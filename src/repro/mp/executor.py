"""Master-side process pool: dispatch, death detection, recovery.

The process backend keeps the paper's master/worker split intact: the
master's :class:`~repro.core.runtime.SmpssRuntime` still owns the
dependency tracker, the scheduler, renaming, and the memory limit.
What changes is only *where a task body runs*: each master worker
thread becomes a **proxy thread** that pops tasks exactly as before
but forwards the body to a dedicated long-lived worker process over a
pipe, blocking (GIL released) until the reply.  Completion bookkeeping
then proceeds on the proxy thread unchanged, so every structural
feature of the runtime works identically under both backends.

Robustness contract (ISSUE: dead-worker recovery):

* worker death is detected via ``Process.sentinel`` — ``connection.wait``
  watches the pipe and the sentinel together, so a SIGKILL mid-task
  wakes the proxy immediately instead of hanging a recv;
* a task lost to a dead worker is re-dispatched exactly once to a
  freshly forked replacement; a second loss raises
  :class:`~repro.mp.encoding.WorkerLostError`, which the runtime wraps
  in the ordinary :class:`~repro.core.runtime.TaskExecutionError`
  naming the task;
* deaths and re-dispatches are counted in the runtime's metrics
  registry (``mp.worker_deaths`` / ``mp.redispatched_tasks``).
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from multiprocessing import connection as _mpc
from typing import Optional

from ..core.invocation import resolve_call_values
from .encoding import (
    PROTOCOL,
    MpSerializationError,
    RemoteTaskError,
    WorkerLostError,
    apply_writebacks,
    definition_key,
    definition_payload,
    encode_values,
    writeback_specs,
)
from .worker import (
    MSG_BYE,
    MSG_DONE,
    MSG_READY,
    MSG_STOP,
    MSG_TASK,
    worker_main,
)

__all__ = ["ProcessBackend"]

#: Seconds to wait for a freshly forked worker's ready handshake.
_HANDSHAKE_TIMEOUT = 30.0
#: Seconds to wait for a worker's goodbye message at shutdown.
_GOODBYE_TIMEOUT = 5.0


class _WorkerDied(Exception):
    """Internal signal: the pipe/sentinel says the worker is gone."""


class _Worker:
    """One worker process and its pipe (slot = proxy-thread index)."""

    __slots__ = ("slot", "proc", "conn", "sent_defs", "seq", "generation")

    def __init__(self, slot: int):
        self.slot = slot
        self.proc = None
        self.conn = None
        self.sent_defs: set = set()
        self.seq = 0
        #: incremented per (re)spawn; visible in error messages.
        self.generation = 0

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None


class ProcessBackend:
    """Executes task bodies in forked worker processes.

    Created (and workers forked) in ``SmpssRuntime.start()`` *before*
    the proxy threads exist and before the runtime is pushed on the api
    stack — so children start from a quiet interpreter.  Respawns after
    a death necessarily fork from a threaded master; the worker entry
    point neutralises all inherited runtime state first thing.
    """

    def __init__(self, runtime):
        self._runtime = runtime
        self._ctx = multiprocessing.get_context("fork")
        self._trace_on = bool(runtime.config.trace)
        self._ring_capacity = runtime.config.trace_buffer_size
        self._tracer = runtime.tracer if runtime.tracer else None
        self._workers: list[_Worker] = []
        self._spawn_lock = threading.Lock()
        metrics = runtime.metrics
        self._m_deaths = metrics.counter("mp.worker_deaths")
        self._m_redispatch = metrics.counter("mp.redispatched_tasks")
        self._stopped = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, num_workers: int) -> None:
        self._stopped = False
        self._workers = [_Worker(slot) for slot in range(1, num_workers + 1)]
        for worker in self._workers:
            self._spawn(worker)

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, worker.slot, self._trace_on, self._ring_capacity),
            name=f"repro-mp-worker-{worker.slot}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # our copy; the child keeps its end open
        worker.proc = proc
        worker.conn = parent_conn
        worker.sent_defs.clear()
        worker.generation += 1
        if not parent_conn.poll(_HANDSHAKE_TIMEOUT):
            self._kill(worker)
            raise WorkerLostError(
                f"worker {worker.slot} (pid {proc.pid}) did not come up "
                f"within {_HANDSHAKE_TIMEOUT:.0f}s"
            )
        msg = pickle.loads(parent_conn.recv_bytes())
        if msg[0] != MSG_READY:  # pragma: no cover - protocol guard
            self._kill(worker)
            raise WorkerLostError(
                f"worker {worker.slot} sent {msg[0]!r} instead of a ready "
                f"handshake"
            )

    def _kill(self, worker: _Worker) -> None:
        if worker.conn is not None:
            try:
                worker.conn.close()
            except Exception:
                pass
            worker.conn = None
        proc = worker.proc
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stubborn child
                proc.kill()
                proc.join(timeout=2.0)

    def _respawn(self, worker: _Worker) -> None:
        with self._spawn_lock:
            self._kill(worker)
            self._spawn(worker)

    def stop(self) -> None:
        """Graceful shutdown: stop message, goodbye trace flush, join.

        Always leaves every child dead and every pipe closed, whatever
        state the workers were in; never raises.
        """

        if self._stopped:
            return
        self._stopped = True
        for worker in self._workers:
            conn = worker.conn
            if conn is None:
                continue
            try:
                conn.send_bytes(pickle.dumps((MSG_STOP,), protocol=PROTOCOL))
            except Exception:
                continue
        for worker in self._workers:
            conn = worker.conn
            if conn is None:
                continue
            try:
                if conn.poll(_GOODBYE_TIMEOUT):
                    msg = pickle.loads(conn.recv_bytes())
                    if msg[0] == MSG_BYE and msg[1] and self._tracer is not None:
                        self._tracer.ingest(msg[1])
            except Exception:
                pass
        for worker in self._workers:
            proc = worker.proc
            if proc is not None:
                proc.join(timeout=2.0)
            self._kill(worker)
        self._workers = []

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def run(self, task, slot: int) -> tuple[Optional[BaseException], float]:
        """Execute *task* on worker *slot*; return ``(cause, duration)``.

        ``cause`` is ``None`` on success, or the exception the runtime
        should wrap in a :class:`TaskExecutionError` — a
        :class:`RemoteTaskError` (the body raised), a
        :class:`MpSerializationError` (arguments cannot ship), or a
        :class:`WorkerLostError` (two worker deaths on one task, or an
        unrevivable worker).
        """

        worker = self._workers[slot - 1]
        live = self._runtime.live
        if live is not None:
            # The worker-side task_start only ships back *with* the
            # reply; without this, a live dashboard would never see a
            # task leave the queue until it was already done.
            live.notify_dispatch(task, slot)
        values = resolve_call_values(task)
        try:
            enc_values = encode_values(task, values)
            wb_specs = writeback_specs(task, values)
        except MpSerializationError as exc:
            return exc, 0.0
        key = definition_key(task.definition)
        attempts = 0
        while True:
            payload = None
            if key not in worker.sent_defs:
                try:
                    payload = definition_payload(task.definition)
                except MpSerializationError as exc:
                    return exc, 0.0
            worker.seq += 1
            seq = worker.seq
            msg = (MSG_TASK, seq, key, payload, task.task_id, task.name,
                   enc_values, wb_specs)
            try:
                data = pickle.dumps(msg, protocol=PROTOCOL)
            except Exception as exc:
                return (
                    MpSerializationError(
                        f"task {task.name!r}: arguments are not picklable "
                        f"({exc!r}); pass arena-backed arrays or use "
                        f"backend='threads'"
                    ),
                    0.0,
                )
            try:
                worker.conn.send_bytes(data)
                worker.sent_defs.add(key)
                reply = self._await_reply(worker, seq)
            except _WorkerDied:
                attempts += 1
                self._m_deaths.inc()
                lost_pid = worker.pid
                if attempts > 1:
                    cause = WorkerLostError(
                        f"worker {worker.slot} (pid {lost_pid}) died while "
                        f"running task #{task.task_id} {task.name!r}, which "
                        f"had already been re-dispatched once; giving up"
                    )
                    self._try_respawn(worker)
                    return cause, 0.0
                try:
                    self._respawn(worker)
                except WorkerLostError as exc:
                    return exc, 0.0
                self._m_redispatch.inc()
                continue
            _tag, _seq, err, wb_values, duration, events = reply
            if events and self._tracer is not None:
                # Proxy-thread context: events land in this thread's
                # ring buffer and merge by timestamp with everyone else.
                self._tracer.ingest(events)
            if err is not None:
                return RemoteTaskError(*err), duration
            apply_writebacks(wb_specs, wb_values, values)
            return None, duration

    def _try_respawn(self, worker: _Worker) -> None:
        """Best-effort revival so later tasks on this slot can proceed."""

        try:
            self._respawn(worker)
        except WorkerLostError:
            pass

    def _await_reply(self, worker: _Worker, seq: int) -> tuple:
        conn = worker.conn
        sentinel = worker.proc.sentinel
        while True:
            ready = _mpc.wait([conn, sentinel])
            if conn in ready:
                try:
                    reply = pickle.loads(conn.recv_bytes())
                except (EOFError, OSError) as exc:
                    raise _WorkerDied from exc
                except Exception as exc:  # pragma: no cover - protocol guard
                    raise _WorkerDied from exc
                if reply[0] == MSG_DONE and reply[1] == seq:
                    return reply
                continue  # unexpected/stale message: keep waiting
            # Sentinel fired with no pipe data: the child is gone, but
            # drain any bytes that raced the death before giving up.
            if conn.poll(0):
                continue
            raise _WorkerDied

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def worker_pids(self) -> list[Optional[int]]:
        return [worker.pid for worker in self._workers]

    def liveness(self) -> list[dict]:
        """Per-slot worker liveness, the health watchdog's feed.

        ``generation`` > 1 means the slot has been respawned after a
        death; ``alive`` is the OS-level :meth:`Process.is_alive` (a
        dead-but-not-yet-respawned worker shows up here before the next
        dispatch to that slot notices).  Lock-free snapshot — the list
        is display data for :mod:`repro.obs.health`, never control flow.
        """

        out = []
        for worker in self._workers:
            proc = worker.proc
            out.append(
                {
                    "slot": worker.slot,
                    "pid": worker.pid,
                    "alive": bool(proc is not None and proc.is_alive()),
                    "generation": worker.generation,
                }
            )
        return out
