"""Length-prefixed binary frames for bulk data transport.

The JSON-lines protocol (:mod:`repro.net.protocol`) is the right wire
for commands and events, but array content must not be base64'd
through it.  A **frame** carries a small JSON header plus an opaque
binary payload::

    +---------------+----------------+------------------+-----------+
    | header length | payload length |  header (JSON)   |  payload  |
    |   u32 big-e   |   u32 big-e    |  UTF-8, compact  | raw bytes |
    +---------------+----------------+------------------+-----------+

The header names what the payload is (``kind``, blob metadata, a task
sequence number); the payload is whatever bytes the two ends agreed on
— ndarray content, a pickled task message.  The distributed backend
(:mod:`repro.dist`) is the first user: every master<->agent hop is one
frame in each direction.

Frames are point-to-point between trusted processes (payloads may be
pickled), the same trust model as :mod:`repro.mp`'s pipes — never
expose an agent port to an untrusted network.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from .client import NetClosed, NetTimeout

__all__ = [
    "FrameError",
    "send_frame",
    "recv_frame",
    "recv_exact",
    "MAX_HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
]

_PREFIX = struct.Struct("!II")

#: Guard rails against a corrupt/foreign peer, not real limits.
MAX_HEADER_BYTES = 16 << 20
MAX_PAYLOAD_BYTES = 4 << 30


class FrameError(ConnectionError):
    """The peer sent bytes that are not a frame."""


def send_frame(sock: socket.socket, header: dict, payload: bytes = b"") -> None:
    """Write one frame; raises :class:`NetClosed` on a dead socket."""

    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    try:
        # One sendall for the fixed part keeps small frames in one
        # segment; the payload (possibly huge) goes separately so no
        # concatenation copy of array content is ever made.
        sock.sendall(_PREFIX.pack(len(head), len(payload)) + head)
        if payload:
            sock.sendall(payload)
    except OSError as exc:
        raise NetClosed(f"peer gone while sending frame: {exc}") from None


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly *n* bytes; :class:`NetClosed` on EOF, preserving
    the socket's current timeout for :class:`NetTimeout`."""

    if n == 0:
        return b""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except (TimeoutError, socket.timeout):
            raise NetTimeout(
                f"frame read stalled with {remaining} byte(s) missing"
            ) from None
        except OSError as exc:
            raise NetClosed(str(exc)) from None
        if not chunk:
            raise NetClosed("peer closed mid-frame" if chunks or remaining != n
                            else "peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, timeout: Optional[float] = None
) -> tuple[dict, bytes]:
    """Read one ``(header, payload)`` frame.

    *timeout* (when given) applies to the whole frame via the socket's
    timeout; ``None`` keeps whatever the socket already has.
    """

    if timeout is not None:
        sock.settimeout(timeout)
    prefix = recv_exact(sock, _PREFIX.size)
    head_len, payload_len = _PREFIX.unpack(prefix)
    if head_len > MAX_HEADER_BYTES or payload_len > MAX_PAYLOAD_BYTES:
        raise FrameError(
            f"implausible frame ({head_len} header / {payload_len} payload "
            f"bytes); not a repro frame stream"
        )
    head = recv_exact(sock, head_len)
    try:
        header = json.loads(head)
    except ValueError as exc:
        raise FrameError(f"frame header is not JSON: {exc}") from None
    if not isinstance(header, dict):
        raise FrameError("frame header must be a JSON object")
    payload = recv_exact(sock, payload_len)
    return header, payload
