"""Client side of the JSON-lines protocol (used by CLIs and tests).

Deliberately single-threaded: every byte is read inside :meth:`recv`,
and a command waits for its own ``ack`` by seq while parking any
interleaved event records on an internal buffer that later ``recv``
calls serve first.  That makes scripted sessions deterministic — there
is no background reader racing the assertions.
"""

from __future__ import annotations

import socket
from typing import Callable, Optional

from .protocol import connect_retry, decode, encode

__all__ = ["Client", "NetTimeout", "NetClosed"]


class NetTimeout(TimeoutError):
    """No record arrived within the requested window."""


class NetClosed(ConnectionError):
    """The server ended the stream (``bye``) or dropped the socket."""


class Client:
    """Attach to a JSON-lines server; stream records; send commands.

    ``expect_hello=True`` (every live/obs surface) reads the server's
    ``hello`` record in the constructor.  Servers that sniff the
    protocol from the client's first bytes defer their hello until the
    client has spoken — those clients pass ``expect_hello=False`` and
    pick the hello out of the stream after their first command.

    Connect and read timeouts are separate knobs: *timeout* bounds
    each read (the historical meaning), *connect_timeout* bounds each
    connect attempt (defaulting to *timeout*), and *connect_attempts*
    retries a refused/unreachable peer with bounded exponential
    backoff (``backoff_base``/``backoff_max``) instead of failing on
    the first ECONNREFUSED — the knob dist agents and served sessions
    use to ride out a daemon that is still binding its port.
    """

    def __init__(
        self,
        address: str,
        timeout: float = 10.0,
        expect_hello: bool = True,
        connect_timeout: Optional[float] = None,
        connect_attempts: int = 1,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
    ):
        self.address = address
        self.timeout = timeout
        self._sock: Optional[socket.socket] = connect_retry(
            address,
            timeout=timeout if connect_timeout is None else connect_timeout,
            attempts=connect_attempts,
            backoff_base=backoff_base,
            backoff_max=backoff_max,
        )
        self._buffer = b""
        self._pending: list[dict] = []
        self._seq = 0
        self._closed = False
        self.hello: dict = {}
        if expect_hello:
            self.hello = self._recv_raw(timeout)
            if self.hello.get("ev") != "hello":
                # Tolerate a server that streams immediately: keep
                # whatever came first for the caller.
                self._pending.append(self.hello)
                self.hello = {}

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def recv(self, timeout: Optional[float] = None) -> dict:
        """Next record (buffered events first).  Raises
        :class:`NetTimeout` / :class:`NetClosed`."""

        if self._pending:
            return self._pending.pop(0)
        return self._recv_raw(self.timeout if timeout is None else timeout)

    def _recv_raw(self, timeout: float) -> dict:
        sock = self._sock
        if sock is None:
            raise NetClosed("connection already closed")
        sock.settimeout(timeout)
        while True:
            while b"\n" in self._buffer:
                line, self._buffer = self._buffer.split(b"\n", 1)
                record = decode(line)
                if record is None:
                    continue
                if record.get("ev") == "bye":
                    self.close()
                    raise NetClosed("server ended the stream")
                return record
            try:
                chunk = sock.recv(65536)
            except (TimeoutError, socket.timeout):
                raise NetTimeout(
                    f"no record within {timeout:.1f}s from {self.address}"
                ) from None
            except OSError as exc:
                self.close()
                raise NetClosed(str(exc)) from None
            if not chunk:
                self.close()
                raise NetClosed("server closed the connection")
            self._buffer += chunk

    def drain(self, idle: float = 0.2, limit: int = 100000) -> list[dict]:
        """Collect records until the stream goes quiet for *idle*
        seconds (or *limit* records arrive).

        *idle* must stay below any periodic record interval the server
        has (the live plane's snapshots default to 0.25s) — periodic
        records would otherwise keep an idle stream "busy" forever.

        A stream that ends mid-drain (the run finished and the server
        said ``bye``) is not an error here: whatever arrived before the
        goodbye is returned, and the next explicit :meth:`recv` or
        :meth:`command` raises :class:`NetClosed`.
        """

        records: list[dict] = []
        while len(records) < limit:
            try:
                records.append(self.recv(timeout=idle))
            except NetTimeout:
                break
            except NetClosed:
                break
        return records

    def wait_for(
        self, predicate: Callable[[dict], bool], timeout: float = 30.0
    ) -> dict:
        """Consume records until *predicate* matches one; returns it.

        Records consumed on the way are gone — feed them to a dashboard
        inside *predicate* if they matter.
        """

        import time

        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise NetTimeout(
                    f"predicate not satisfied within {timeout:.1f}s"
                )
            record = self.recv(timeout=remaining)
            if predicate(record):
                return record

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------
    def command(self, cmd: str, **fields) -> dict:
        """Send a command; block for its ack; return the ack's data.

        Events that arrive before the ack are buffered for
        :meth:`recv`.  A ``not ok`` ack raises ``RuntimeError``.
        """

        sock = self._sock
        if sock is None:
            raise NetClosed("connection already closed")
        self._seq += 1
        seq = self._seq
        record = {"cmd": cmd, "seq": seq}
        record.update(fields)
        sock.sendall(encode(record))
        while True:
            reply = self._recv_raw(self.timeout)
            if reply.get("ev") == "ack" and reply.get("seq") == seq:
                if not reply.get("ok"):
                    raise RuntimeError(
                        f"command {cmd!r} failed: {reply.get('error')}"
                    )
                return reply.get("data", {})
            self._pending.append(reply)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def detach(self) -> None:
        """Orderly goodbye (the server drops only this connection)."""

        sock = self._sock
        if sock is not None and not self._closed:
            try:
                sock.sendall(encode({"cmd": "detach"}))
            except OSError:
                pass
        self.close()

    def close(self) -> None:
        self._closed = True
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()
