"""Shared socket transport for every networked repro surface.

One wire format — one JSON object per line, UTF-8, ``\n``-terminated —
served and consumed by one :class:`Server`/:class:`Client` pair.  The
live inspection plane (:mod:`repro.live`), the Prometheus exposition
endpoint (:mod:`repro.obs`), and the task-graph service
(:mod:`repro.serve`) are all thin wrappers over this module; none of
them owns sockets of its own.

The server optionally *sniffs* the first bytes of each connection and
hands plain HTTP ``GET``/``HEAD`` requests to an ``http_responder``
callback, so one port can serve both the JSON-lines protocol and a
browser/Prometheus scrape.

Addresses take two forms: ``tcp:HOST:PORT`` (PORT ``0`` binds an
ephemeral port; the server reports the real one) or a filesystem path,
which means a unix-domain socket.
"""

from .client import Client, NetClosed, NetTimeout
from .frames import FrameError, recv_frame, send_frame
from .protocol import (
    PROTOCOL_VERSION,
    connect,
    connect_retry,
    decode,
    encode,
    format_address,
    parse_address,
)
from .server import Server

__all__ = [
    "PROTOCOL_VERSION",
    "Client",
    "FrameError",
    "NetClosed",
    "NetTimeout",
    "Server",
    "connect",
    "connect_retry",
    "decode",
    "encode",
    "format_address",
    "parse_address",
    "recv_frame",
    "send_frame",
]
