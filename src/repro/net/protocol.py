"""Wire helpers shared by every JSON-lines surface.

One JSON object per line, UTF-8, ``\n``-terminated, in both
directions.  Servers stream event records (``ev`` field); clients send
small command objects (``cmd`` field plus a client-chosen ``seq``) and
correlate replies by ``seq``.  Two records are protocol-level rather
than application-level:

``ack``
    Reply to one command: ``seq``, ``cmd``, ``ok``, ``data`` | ``error``.
``bye``
    Orderly end of stream.

Addresses take two forms: ``tcp:HOST:PORT`` (PORT ``0`` binds an
ephemeral port; the server reports the real one) or a filesystem path,
which means a unix-domain socket.
"""

from __future__ import annotations

import json
import socket
from typing import Optional

__all__ = [
    "PROTOCOL_VERSION",
    "encode",
    "decode",
    "parse_address",
    "format_address",
    "connect",
]

PROTOCOL_VERSION = 1


def encode(record: dict) -> bytes:
    """One wire line for *record* (compact separators, trailing LF)."""

    return json.dumps(record, separators=(",", ":")).encode() + b"\n"


def decode(line) -> Optional[dict]:
    """Parse one wire line; ``None`` for blank/unparseable lines."""

    if not line:
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def parse_address(spec: str) -> tuple:
    """``"tcp:HOST:PORT"`` -> ``("tcp", host, port)``; anything else is
    a unix-socket path -> ``("unix", path)``."""

    if spec.startswith("tcp:"):
        rest = spec[4:]
        host, sep, port = rest.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"bad tcp address {spec!r}; expected tcp:HOST:PORT"
            )
        return ("tcp", host, int(port))
    return ("unix", spec)


def format_address(parsed: tuple) -> str:
    if parsed[0] == "tcp":
        return f"tcp:{parsed[1]}:{parsed[2]}"
    return parsed[1]


def connect(spec: str, timeout: Optional[float] = None) -> socket.socket:
    """Client-side connect to a server address spec."""

    parsed = parse_address(spec)
    if parsed[0] == "tcp":
        sock = socket.create_connection(
            (parsed[1], parsed[2]), timeout=timeout
        )
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            sock.settimeout(timeout)
        sock.connect(parsed[1])
    return sock
