"""Wire helpers shared by every JSON-lines surface.

One JSON object per line, UTF-8, ``\n``-terminated, in both
directions.  Servers stream event records (``ev`` field); clients send
small command objects (``cmd`` field plus a client-chosen ``seq``) and
correlate replies by ``seq``.  Two records are protocol-level rather
than application-level:

``ack``
    Reply to one command: ``seq``, ``cmd``, ``ok``, ``data`` | ``error``.
``bye``
    Orderly end of stream.

Addresses take two forms: ``tcp:HOST:PORT`` (PORT ``0`` binds an
ephemeral port; the server reports the real one) or a filesystem path,
which means a unix-domain socket.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Callable, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "encode",
    "decode",
    "parse_address",
    "format_address",
    "connect",
    "connect_retry",
]

PROTOCOL_VERSION = 1


def encode(record: dict) -> bytes:
    """One wire line for *record* (compact separators, trailing LF)."""

    return json.dumps(record, separators=(",", ":")).encode() + b"\n"


def decode(line) -> Optional[dict]:
    """Parse one wire line; ``None`` for blank/unparseable lines."""

    if not line:
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def parse_address(spec: str) -> tuple:
    """``"tcp:HOST:PORT"`` -> ``("tcp", host, port)``; anything else is
    a unix-socket path -> ``("unix", path)``."""

    if spec.startswith("tcp:"):
        rest = spec[4:]
        host, sep, port = rest.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"bad tcp address {spec!r}; expected tcp:HOST:PORT"
            )
        return ("tcp", host, int(port))
    return ("unix", spec)


def format_address(parsed: tuple) -> str:
    if parsed[0] == "tcp":
        return f"tcp:{parsed[1]}:{parsed[2]}"
    return parsed[1]


def connect(spec: str, timeout: Optional[float] = None) -> socket.socket:
    """Client-side connect to a server address spec.

    *timeout* bounds the connect itself **and** becomes the socket's
    initial read timeout; ``None`` blocks indefinitely (the historical
    behaviour — prefer :func:`connect_retry` for anything that must
    survive a dead or not-yet-started peer).
    """

    parsed = parse_address(spec)
    if parsed[0] == "tcp":
        sock = socket.create_connection(
            (parsed[1], parsed[2]), timeout=timeout
        )
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            sock.settimeout(timeout)
        sock.connect(parsed[1])
    return sock


def connect_retry(
    spec: str,
    *,
    timeout: Optional[float] = 10.0,
    attempts: int = 5,
    backoff_base: float = 0.05,
    backoff_max: float = 2.0,
    sleep: Callable[[float], None] = time.sleep,
) -> socket.socket:
    """Bounded exponential-backoff connect.

    Tries up to *attempts* times, sleeping ``backoff_base * 2**k``
    (capped at *backoff_max*) between tries; each individual connect is
    bounded by *timeout* seconds, so the worst case is a known, finite
    wall-clock — never the block-forever of a bare ``connect`` against
    a dead peer.  Raises ``ConnectionError`` naming the address and the
    last underlying error once the budget is spent.

    *sleep* is injectable for tests (deterministic backoff assertions
    without wall-clock waits).
    """

    if attempts < 1:
        raise ValueError("connect_retry needs attempts >= 1")
    delay = backoff_base
    last: Optional[Exception] = None
    for attempt in range(attempts):
        if attempt:
            sleep(min(delay, backoff_max))
            delay *= 2
        try:
            return connect(spec, timeout)
        except (OSError, ConnectionError) as exc:
            last = exc
    raise ConnectionError(
        f"could not connect to {spec!r} after {attempts} attempt(s): {last}"
    )
