"""The shared JSON-lines socket server (one background accept thread).

Every accepted client first receives the ``hello`` record and the full
retained history (so a late attacher reconstructs the stream exactly),
then rides the live stream.  A per-client reader thread parses command
lines and hands them to the owner's handler; the resulting ``ack``
goes only to that client.

Publishing happens on the *caller's* thread — a slow or dead client
never blocks the owner, only the publisher, and a client whose socket
errors is dropped.
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Callable, Optional

from .protocol import encode, decode, format_address, parse_address

__all__ = ["Server"]


class Server:
    """Bind, accept, fan out records, and route commands.

    *handler* is ``fn(cmd: dict) -> dict`` returning the ``data`` for a
    successful ack (raise ``ValueError`` for a command error).  *hello*
    is the dict sent (with ``ev: hello`` added) as every connection's
    first record.  *name* prefixes the accept/reader thread names so
    the owning subsystem stays identifiable in thread dumps.
    """

    def __init__(
        self,
        address: str,
        handler: Callable[[dict], dict],
        hello: Optional[dict] = None,
        http_responder: Optional[Callable] = None,
        name: str = "repro-net",
    ):
        self._handler = handler
        self._hello = dict(hello or {})
        self._hello["ev"] = "hello"
        self._name = name
        #: Optional ``fn(handler, path) -> bytes`` serving plain HTTP
        #: GETs (the health exposition endpoint passes its Prometheus
        #: router here).  When set, the hello/backlog replay is
        #: *deferred* until the first client bytes identify the
        #: protocol — an HTTP client must not receive JSON lines ahead
        #: of its response.  ``None`` (every live session) keeps the
        #: original send-hello-on-accept behaviour.
        self._http_responder = http_responder
        parsed = parse_address(address)
        self._unix_path: Optional[str] = None
        if parsed[0] == "tcp":
            self._sock = socket.create_server(
                (parsed[1], parsed[2]), reuse_port=False
            )
            host, port = self._sock.getsockname()[:2]
            self.address = format_address(("tcp", parsed[1], port))
        else:
            path = parsed[1]
            try:
                os.unlink(path)
            except OSError:
                pass
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.bind(path)
            self._sock.listen()
            self._unix_path = path
            self.address = path
        self._lock = threading.Lock()
        self._clients: list[socket.socket] = []
        #: Per-client write locks: the publisher thread (events) and the
        #: client's reader thread (command acks) both write to the same
        #: socket, and two concurrent ``sendall`` calls may interleave
        #: *partial* writes — silently corrupting the line framing.
        self._wlocks: dict[socket.socket, threading.Lock] = {}
        self._history: list[bytes] = []
        self._closed = False
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{name}-accept", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # publishing (called from the owner's publisher thread)
    # ------------------------------------------------------------------
    def publish(self, record: dict, retain: bool = True) -> None:
        """Send *record* to every connected client.

        ``retain`` keeps the line in the history replayed to future
        attachers — structural records retain, periodic snapshots do
        not (a fresh one follows within the snapshot interval anyway).
        """

        line = encode(record)
        with self._lock:
            if self._closed:
                return
            if retain:
                self._history.append(line)
            clients = list(self._clients)
        for client in clients:
            self._send(client, line)

    def _send(self, client: socket.socket, line: bytes) -> None:
        lock = self._wlocks.get(client)
        if lock is None:
            return  # concurrently dropped; nothing to write to
        try:
            with lock:
                client.sendall(line)
        except OSError:
            self._drop(client)

    def _drop(self, client: socket.socket) -> None:
        with self._lock:
            if client in self._clients:
                self._clients.remove(client)
            self._wlocks.pop(client, None)
        try:
            client.close()
        except OSError:
            pass

    @property
    def client_count(self) -> int:
        with self._lock:
            return len(self._clients)

    # ------------------------------------------------------------------
    # accepting / command routing
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                client, _addr = self._sock.accept()
            except OSError:
                return  # listening socket closed
            with self._lock:
                if self._closed:
                    client.close()
                    return
                backlog = list(self._history)
                # Register *before* replay is complete would interleave
                # live lines into the backlog out of order, so replay
                # happens while holding the lock — attach is rare and
                # the backlog bounded by the stream size.  With an HTTP
                # responder the replay is deferred to the reader thread
                # (after protocol sniffing) instead.
                if self._http_responder is None:
                    try:
                        client.sendall(
                            encode(self._hello) + b"".join(backlog)
                        )
                    except OSError:
                        client.close()
                        continue
                self._clients.append(client)
                self._wlocks[client] = threading.Lock()
            reader = threading.Thread(
                target=self._client_loop,
                args=(client,),
                name=f"{self._name}-client",
                daemon=True,
            )
            self._threads.append(reader)
            reader.start()

    def _client_loop(self, client: socket.socket) -> None:
        buffer = b""
        if self._http_responder is not None:
            handled, buffer = self._sniff_http(client)
            if handled:
                return
        while True:
            # Drain complete lines first: the protocol sniff may have
            # buffered the client's first command already, and a recv
            # before processing it would deadlock a request/reply
            # client waiting for its ack.
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                command = decode(line)
                if command is None:
                    continue
                if command.get("cmd") == "detach":
                    self._send(client, encode({"ev": "bye"}))
                    self._drop(client)
                    return
                self._send(client, encode(self._run(command)))
            try:
                chunk = client.recv(65536)
            except OSError:
                chunk = b""
            if not chunk:
                self._drop(client)
                return
            buffer += chunk

    def _sniff_http(self, client: socket.socket) -> tuple[bool, bytes]:
        """Identify the client's protocol from its first bytes.

        Returns ``(True, b"")`` after serving (and closing) an HTTP
        ``GET``/``HEAD``; otherwise sends the deferred hello + backlog
        replay and returns ``(False, buffered_bytes)`` for the JSON
        loop to continue with.
        """

        buffer = b""
        while len(buffer) < 5:
            try:
                chunk = client.recv(65536)
            except OSError:
                chunk = b""
            if not chunk:
                self._drop(client)
                return True, b""
            buffer += chunk
        if buffer.startswith(b"GET ") or buffer.startswith(b"HEAD "):
            # Drain the request head (best effort; one request per
            # connection, Connection: close semantics).
            while b"\r\n\r\n" not in buffer and len(buffer) < 65536:
                try:
                    chunk = client.recv(65536)
                except OSError:
                    break
                if not chunk:
                    break
                buffer += chunk
            request_line = buffer.split(b"\r\n", 1)[0].decode(
                "latin-1", "replace"
            )
            parts = request_line.split()
            path = parts[1] if len(parts) > 1 else "/"
            try:
                response = self._http_responder(self._handler, path)
            except Exception as exc:  # noqa: BLE001 - report, don't die
                body = str(exc).encode("utf-8", "replace")
                response = (
                    b"HTTP/1.1 500 Internal Server Error\r\n"
                    b"Content-Type: text/plain\r\n"
                    b"Content-Length: " + str(len(body)).encode() +
                    b"\r\nConnection: close\r\n\r\n" + body
                )
            lock = self._wlocks.get(client)
            try:
                if lock is not None:
                    with lock:
                        client.sendall(response)
            except OSError:
                pass
            self._drop(client)
            return True, b""
        # JSON-lines client: deliver the deferred hello + backlog now.
        with self._lock:
            backlog = list(self._history)
        try:
            lock = self._wlocks.get(client)
            if lock is not None:
                with lock:
                    client.sendall(encode(self._hello) + b"".join(backlog))
        except OSError:
            self._drop(client)
            return True, b""
        return False, buffer

    def _run(self, command: dict) -> dict:
        ack = {
            "ev": "ack",
            "seq": command.get("seq"),
            "cmd": command.get("cmd"),
        }
        try:
            ack["data"] = self._handler(command)
            ack["ok"] = True
        except Exception as exc:  # noqa: BLE001 - reported to the client
            ack["ok"] = False
            ack["error"] = str(exc)
        return ack

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            clients = list(self._clients)
            self._clients.clear()
        bye = encode({"ev": "bye"})
        for client in clients:
            # Reader threads may still be writing acks: take the same
            # per-client write lock so the goodbye cannot splice into
            # the middle of another line.
            lock = self._wlocks.pop(client, None) or threading.Lock()
            try:
                with lock:
                    client.sendall(bye)
            except OSError:
                pass
            try:
                client.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            client.close()
        try:
            self._sock.close()
        except OSError:
            pass
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
