"""Runtime access sanitizer (the dynamic layer of ``repro.check``).

``SmpssRuntime(sanitize=True)`` routes every task execution through a
:class:`Sanitizer`:

* numpy arguments whose declared direction never writes (``input``
  clauses, and undeclared array parameters — by-value scalars to the
  runtime) are replaced by **access-guarded views**: read-only
  (``writeable=False``) subclass views that raise
  :class:`AccessViolation` naming the task, the parameter and the
  operation on any write attempt.  Writes that bypass Python-level
  operators (BLAS ``out=`` targets, buffer-protocol consumers) are
  stopped by the read-only flag itself and translated into an
  :class:`AccessViolation` at task-failure time.
* ``output``/``inout`` numpy arguments are **write-tracked**: the
  declared write region is snapshotted before the body runs and
  compared at completion; a task that left its declared output
  unchanged produces an ``unwritten-output`` finding (a warning — the
  body may legitimately have written identical bytes, so this never
  raises).

Violations are appended to :attr:`Sanitizer.findings` and, when the
runtime traces, emitted as ``violation`` events so they land in
exported traces next to the task that caused them.  When the runtime
collects metrics, every raising violation also increments the
``check.violations`` counter (and each finding a per-rule
``check.findings{rule=...}`` counter), so a ``repro.obs.health``
scrape of a misbehaving run shows the sanitizer firing without
needing the trace.

Cost: one guarded view per read-only argument (cheap) plus one copy of
each declared write region (can be large).  The sanitizer is a
debugging mode, off by default; see ``docs/static_analysis.md`` for the
overhead discussion.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.regions import FULL_DIM
from ..core.task import Direction, TaskInstance

__all__ = ["AccessViolation", "Sanitizer", "SanitizerFinding", "guard_readonly"]


class AccessViolation(RuntimeError):
    """A task body wrote through a parameter its pragma never declared
    writable.  Raised inside the task body (the write is blocked), so
    it surfaces at the barrier wrapped in ``TaskExecutionError``."""

    def __init__(self, task: str, param: str, op: str, declared: bool = True):
        clause = (
            "declared input-only" if declared
            else "not declared in any directionality clause"
        )
        super().__init__(
            f"sanitizer: task '{task}' attempted {op} on parameter "
            f"'{param}', which is {clause}"
        )
        self.task = task
        self.param = param
        self.op = op
        self.rule = "input-write" if declared else "undeclared-mutation"


class _GuardedView(np.ndarray):
    """Read-only ndarray view that names its parameter on write attempts.

    The read-only flag is the enforcement mechanism (it also stops
    writes we cannot intercept at the Python level); the subclass
    exists to turn numpy's anonymous ``read-only`` ValueError into an
    :class:`AccessViolation` carrying task + parameter for the common
    write idioms.  Derived arrays (ufunc results) are fresh writable
    buffers, so the ``flags.writeable`` test keeps them unaffected;
    *views* of a guard inherit the read-only flag and stay guarded.
    """

    def __array_finalize__(self, obj):
        if obj is not None:
            self._css_param = getattr(obj, "_css_param", None)
            self._css_task = getattr(obj, "_css_task", None)
            self._css_declared = getattr(obj, "_css_declared", True)

    def _violate(self, op: str):
        raise AccessViolation(
            self._css_task or "<task>", self._css_param or "<param>",
            op, getattr(self, "_css_declared", True),
        )

    def __setitem__(self, key, value):
        if not self.flags.writeable and self._css_param is not None:
            self._violate("item assignment")
        super().__setitem__(key, value)


def _inplace(op_name: str, symbol: str):
    base = getattr(np.ndarray, op_name)

    def method(self, other):
        if not self.flags.writeable and self._css_param is not None:
            self._violate(f"augmented assignment ({symbol})")
        return base(self, other)

    method.__name__ = op_name
    return method


for _name, _sym in [
    ("__iadd__", "+="), ("__isub__", "-="), ("__imul__", "*="),
    ("__itruediv__", "/="), ("__ifloordiv__", "//="), ("__imod__", "%="),
    ("__ipow__", "**="), ("__imatmul__", "@="), ("__iand__", "&="),
    ("__ior__", "|="), ("__ixor__", "^="), ("__ilshift__", "<<="),
    ("__irshift__", ">>="),
]:
    setattr(_GuardedView, _name, _inplace(_name, _sym))


def _mutator(method_name: str):
    base = getattr(np.ndarray, method_name)

    def method(self, *args, **kwargs):
        if not self.flags.writeable and self._css_param is not None:
            self._violate(f"mutating method {method_name}()")
        return base(self, *args, **kwargs)

    method.__name__ = method_name
    return method


for _name in ("sort", "fill", "put", "partition", "resize"):
    setattr(_GuardedView, _name, _mutator(_name))


def guard_readonly(
    value: np.ndarray, task: str, param: str, declared: bool = True
) -> np.ndarray:
    """A read-only guarded view of *value* (the underlying buffer is
    untouched; other tasks' writable views are unaffected)."""

    view = value.view(_GuardedView)
    view._css_param = param
    view._css_task = task
    view._css_declared = declared
    view.flags.writeable = False
    return view


@dataclass(frozen=True)
class SanitizerFinding:
    """One dynamic-layer diagnostic (mirrors the linter's rule codes)."""

    rule: str
    task: str
    task_id: int
    param: str
    message: str

    def render(self) -> str:
        return f"task #{self.task_id} {self.task!r}: {self.rule}: {self.message}"


class Sanitizer:
    """Per-runtime access sanitizer; thread-safe (workers call it)."""

    def __init__(self, tracer=None, metrics=None):
        self._tracer = tracer
        self._metrics = metrics
        self._lock = threading.Lock()
        self.findings: list[SanitizerFinding] = []
        #: violations that raised (also recorded in findings)
        self.violations = 0

    # ------------------------------------------------------------------
    def wrap(self, task: TaskInstance, values: list) -> list:
        """Guard/track *values* (resolved call values, signature order)."""

        definition = task.definition
        directions = definition.directions_by_name
        snapshots: list[tuple[str, np.ndarray, list, list]] = []
        out = list(values)
        for idx, name in enumerate(definition.param_names):
            value = out[idx]
            if not isinstance(value, np.ndarray):
                continue
            dirs = directions.get(name)
            if dirs is not None and Direction.OPAQUE in dirs:
                continue  # opaque: passes through the runtime unaltered
            writes = dirs is not None and any(d.writes for d in dirs)
            if not writes:
                out[idx] = guard_readonly(
                    value, task.name, name, declared=dirs is not None
                )
            else:
                slices = self._write_slices(task, name, value.ndim)
                snapshots.append(
                    (name, value, slices, [value[s].copy() for s in slices])
                )
        task.sanitizer_state = snapshots
        return out

    @staticmethod
    def _write_slices(task: TaskInstance, name: str, ndim: int) -> list:
        """Index tuples covering the declared write regions of *name*."""

        slices = []
        for access in task.accesses:
            if access.name != name or not access.direction.writes:
                continue
            if access.region is None:
                slices.append((Ellipsis,))
            else:
                slices.append(tuple(
                    slice(None) if (lo, hi) == FULL_DIM else slice(lo, hi + 1)
                    for lo, hi in access.region.intervals
                ))
        return slices or [(Ellipsis,)]

    # ------------------------------------------------------------------
    def finish(self, task: TaskInstance, thread: int = -1) -> None:
        """Post-execution check: report declared writes that never
        happened (content-compare of the snapshotted write regions)."""

        state = getattr(task, "sanitizer_state", None)
        task.sanitizer_state = None
        if not state:
            return
        for name, storage, slices, copies in state:
            written = any(
                not np.array_equal(storage[s], before)
                for s, before in zip(slices, copies)
            )
            if written:
                continue
            dirs = task.definition.directions_by_name.get(name, ())
            declared = "/".join(sorted(d.value for d in dirs))
            self._record(
                task, thread, "unwritten-output", name,
                f"parameter '{name}' is declared {declared} but the task "
                f"left its declared write region unchanged",
            )

    def record_violation(
        self, task: TaskInstance, exc: AccessViolation, thread: int = -1
    ) -> None:
        with self._lock:
            self.violations += 1
        if self._metrics is not None:
            self._metrics.counter("check.violations").inc()
        self._record(task, thread, exc.rule, exc.param, str(exc))

    def translate(
        self, task: TaskInstance, exc: BaseException, thread: int = -1
    ) -> Optional[AccessViolation]:
        """Attribute a failure to the sanitizer where possible.

        :class:`AccessViolation` is recorded as-is.  A bare
        ``ValueError: ... read-only ...`` from a write path we could
        not intercept (BLAS ``out=``, buffer protocol) is rewritten
        into an :class:`AccessViolation` naming the guarded candidates.
        """

        if isinstance(exc, AccessViolation):
            self.record_violation(task, exc, thread)
            return None
        if isinstance(exc, ValueError) and "read-only" in str(exc):
            guarded = [
                name for name in task.definition.param_names
                if self._is_guarded(task, name)
            ]
            if not guarded:
                return None
            param = guarded[0] if len(guarded) == 1 else f"one of {guarded}"
            violation = AccessViolation(
                task.name, param, "a write (through a read-only guard)"
            )
            violation.__cause__ = exc
            self.record_violation(task, violation, thread)
            return violation
        return None

    @staticmethod
    def _is_guarded(task: TaskInstance, name: str) -> bool:
        dirs = task.definition.directions_by_name.get(name)
        if dirs is not None and (
            Direction.OPAQUE in dirs or any(d.writes for d in dirs)
        ):
            return False
        return isinstance(task.arguments.get(name), np.ndarray)

    # ------------------------------------------------------------------
    def _record(
        self, task: TaskInstance, thread: int, rule: str, param: str,
        message: str,
    ) -> None:
        finding = SanitizerFinding(
            rule=rule, task=task.name, task_id=task.task_id, param=param,
            message=message,
        )
        with self._lock:
            self.findings.append(finding)
        if self._metrics is not None:
            self._metrics.counter("check.findings", rule=rule).inc()
        if self._tracer:
            self._tracer.violation(task, thread, rule, param)

    def report(self) -> str:
        with self._lock:
            findings = list(self.findings)
        if not findings:
            return "sanitizer: no violations"
        lines = [f.render() for f in findings]
        lines.append(f"sanitizer: {len(findings)} finding(s)")
        return "\n".join(lines)
