"""repro.check — annotation-correctness tooling for the SMPSs model.

Two layers (see ``docs/static_analysis.md``):

* **static** — an AST linter cross-checking each task's directionality
  clauses against its body (:func:`lint_source`, :func:`lint_file`,
  :func:`lint_paths`; ``python -m repro.check lint``);
* **dynamic** — a runtime sanitizer (``SmpssRuntime(sanitize=True)``)
  wrapping numpy arguments in access-guarded views so undeclared writes
  fail fast with the task and parameter named, and unwritten outputs
  are reported at task completion.
"""

from .astlint import lint_file, lint_paths, lint_source
from .findings import ERROR, RULES, WARNING, Finding
from .report import filter_findings, render_json, render_text
from .sanitize import AccessViolation, Sanitizer, SanitizerFinding

__all__ = [
    "AccessViolation",
    "ERROR",
    "Finding",
    "RULES",
    "Sanitizer",
    "SanitizerFinding",
    "WARNING",
    "filter_findings",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
