"""repro.check — annotation-correctness tooling for the SMPSs model.

Three layers (see ``docs/static_analysis.md``):

* **static, per task** — an AST linter cross-checking each task's
  directionality clauses against its body (:func:`lint_source`,
  :func:`lint_file`, :func:`lint_paths`; ``python -m repro.check lint``);
* **static, whole program** — an abstract interpreter over the driver
  that extracts the task-graph skeleton and reports cross-submission
  hazards (:func:`flow_source`, :func:`flow_file`, :func:`flow_paths`;
  ``python -m repro.check flow``);
* **dynamic** — a runtime sanitizer (``SmpssRuntime(sanitize=True)``)
  wrapping numpy arguments in access-guarded views so undeclared writes
  fail fast with the task and parameter named, and unwritten outputs
  are reported at task completion.
"""

from .astlint import lint_file, lint_paths, lint_source
from .findings import ERROR, RULES, WARNING, Finding
from .flow import (
    FlowOptions,
    FlowResult,
    StaticGraph,
    flow_file,
    flow_paths,
    flow_source,
)
from .report import filter_findings, render_json, render_text
from .sanitize import AccessViolation, Sanitizer, SanitizerFinding
from .suppress import SuppressionIndex

__all__ = [
    "AccessViolation",
    "ERROR",
    "Finding",
    "FlowOptions",
    "FlowResult",
    "RULES",
    "Sanitizer",
    "SanitizerFinding",
    "StaticGraph",
    "SuppressionIndex",
    "WARNING",
    "filter_findings",
    "flow_file",
    "flow_paths",
    "flow_source",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
