"""The one suppression resolver shared by ``astlint`` and ``flow``.

Suppression grammar (documented in ``docs/static_analysis.md``)::

    # css: ignore[rule, rule]     silence those rules
    # css: ignore                 silence everything

Placement decides scope:

* **line** — on the offending line: that line only;
* **task** — on the ``def`` line, a decorator line, the pragma line, or
  (for ``#pragma css task`` constructs) any line of the pragma block
  between the pragma and its ``def``, continuation lines included:
  every finding of that task;
* **file** — in the module header (the leading block of comments and
  blank lines) or inside the module docstring: every finding in the
  file.

Both static layers build one :class:`SuppressionIndex` per source file
and ask it :meth:`~SuppressionIndex.is_suppressed` per finding, so the
two analyses can never disagree about what a suppression means.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Optional, Sequence

__all__ = ["ALL_RULES", "IGNORE_RE", "SuppressionIndex"]

IGNORE_RE = re.compile(r"#\s*css:\s*ignore(?:\[(?P<rules>[^\]]*)\])?")

#: sentinel meaning "every rule" (bare ``# css: ignore``).
ALL_RULES = "*"


def _parse_rules(match: re.Match) -> set[str]:
    rules = match.group("rules")
    if rules is None:
        return {ALL_RULES}
    return {r.strip() for r in rules.split(",") if r.strip()}


def _header_end(lines: Sequence[str], tree: Optional[ast.Module]) -> int:
    """1-based last line of the module header (0 = no header).

    The header is the leading run of blank/comment lines plus, when the
    first statement is a docstring, the docstring itself.
    """

    end = 0
    for idx, line in enumerate(lines, start=1):
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            break
        end = idx
    if tree is not None and tree.body:
        first = tree.body[0]
        if (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        ):
            end = max(end, first.end_lineno or first.lineno)
    return end


class SuppressionIndex:
    """Resolved ``# css: ignore`` comments of one source file."""

    def __init__(
        self,
        line_rules: dict[int, set[str]],
        file_rules: set[str],
    ):
        self._line_rules = line_rules
        self._file_rules = file_rules

    @classmethod
    def from_source(
        cls, source: str, tree: Optional[ast.Module] = None
    ) -> "SuppressionIndex":
        lines = source.split("\n")
        line_rules: dict[int, set[str]] = {}
        for idx, line in enumerate(lines, start=1):
            match = IGNORE_RE.search(line)
            if match is not None:
                line_rules[idx] = _parse_rules(match)
        if tree is None:
            try:
                tree = ast.parse(source)
            except SyntaxError:
                tree = None
        file_rules: set[str] = set()
        header_end = _header_end(lines, tree)
        for idx in range(1, header_end + 1):
            file_rules |= line_rules.get(idx, set())
        return cls(line_rules, file_rules)

    @property
    def file_rules(self) -> frozenset[str]:
        return frozenset(self._file_rules)

    def rules_for_line(self, line: int) -> frozenset[str]:
        return frozenset(self._line_rules.get(line, ()))

    def is_suppressed(
        self, rule: str, line: int, scope_lines: Iterable[int] = ()
    ) -> bool:
        """True when *rule* at *line* is silenced.

        *scope_lines* are the extra lines whose suppressions apply to
        the whole construct the finding belongs to (def/decorator/
        pragma-block lines of its task).
        """

        if ALL_RULES in self._file_rules or rule in self._file_rules:
            return True
        for candidate in (line, *scope_lines):
            rules = self._line_rules.get(candidate)
            if rules and (ALL_RULES in rules or rule in rules):
                return True
        return False
