"""Annotation-correctness tooling, from the command line.

Usage::

    python -m repro.check lint src/repro/apps examples
    python -m repro.check lint prog.py --format json
    python -m repro.check lint prog.py --select input-write,bad-pragma
    python -m repro.check lint prog.py --ignore unwritten-output
    python -m repro.check lint prog.py --constants N,M
    python -m repro.check flow src/repro/apps examples
    python -m repro.check flow driver.py --entry main --format dot
    python -m repro.check flow driver.py --format json
    python -m repro.check rules

``lint`` checks each task body against its pragma; ``flow`` abstractly
interprets the whole driver program, reporting cross-submission
hazards (``flow-*`` rules) and — for a single file — emitting the
static task-graph skeleton as JSON or GraphViz.  Both exit 0 when
clean, 1 when any finding survives filtering, and 2 on usage errors
(unreadable path, unknown rule name).  Directories are searched
recursively for ``*.py``.  ``--constants`` declares extra names (the
paper's compile-time constants) legal in dimension/region bound
expressions.
"""

from __future__ import annotations

import argparse
import json
import sys

from .astlint import lint_paths
from .findings import RULES
from .flow import FlowOptions, flow_file, flow_paths
from .report import filter_findings, render_json, render_text


def _split_rules(raw: str, parser: argparse.ArgumentParser) -> list[str]:
    rules = [r.strip() for r in raw.split(",") if r.strip()]
    unknown = [r for r in rules if r not in RULES]
    if unknown:
        parser.error(
            f"unknown rule(s): {', '.join(unknown)} "
            f"(see 'python -m repro.check rules')"
        )
    return rules


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Directionality-annotation correctness tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="lint task annotations in files/dirs")
    lint.add_argument("paths", nargs="+", help="files or directories")
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--select", default="", metavar="RULES",
        help="comma-separated rule codes to report (default: all)",
    )
    lint.add_argument(
        "--ignore", default="", metavar="RULES",
        help="comma-separated rule codes to drop",
    )
    lint.add_argument(
        "--constants", default="", metavar="NAMES",
        help="comma-separated names usable in bound expressions",
    )

    flow = sub.add_parser(
        "flow", help="whole-program analysis of driver files/dirs"
    )
    flow.add_argument("paths", nargs="+", help="files or directories")
    flow.add_argument(
        "--entry", default=None, metavar="NAME",
        help="analyze NAME() instead of the module main path "
             "(single file only)",
    )
    flow.add_argument(
        "--format", choices=("text", "json", "dot"), default="text",
        help="output format (default: text; dot needs a single file)",
    )
    flow.add_argument(
        "--select", default="", metavar="RULES",
        help="comma-separated rule codes to report (default: all)",
    )
    flow.add_argument(
        "--ignore", default="", metavar="RULES",
        help="comma-separated rule codes to drop",
    )
    flow.add_argument(
        "--max-unroll", type=int, default=None, metavar="N",
        help="full-unroll budget per loop (default: 128)",
    )

    sub.add_parser("rules", help="print the rule catalogue")

    args = parser.parse_args(argv)

    if args.command == "rules":
        width = max(len(r) for r in RULES)
        for rule, (severity, description) in RULES.items():
            print(f"{rule:<{width}}  {severity:<7}  {description}")
        return 0

    select = _split_rules(args.select, parser) if args.select else []
    ignore = _split_rules(args.ignore, parser) if args.ignore else []

    if args.command == "flow":
        return _run_flow(args, parser, select, ignore)

    constants = [c.strip() for c in args.constants.split(",") if c.strip()]
    try:
        findings = lint_paths(args.paths, constants=constants)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings = filter_findings(findings, select=select, ignore=ignore)
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def _run_flow(args, parser, select, ignore) -> int:
    options = FlowOptions()
    if args.max_unroll is not None:
        options.max_unroll = args.max_unroll
    single = len(args.paths) == 1 and args.paths[0].endswith(".py")
    if (args.entry or args.format == "dot") and not single:
        parser.error("--entry and --format dot require a single .py file")
    try:
        if single:
            result = flow_file(args.paths[0], entry=args.entry,
                               options=options)
            findings = result.findings
        else:
            result = None
            findings = flow_paths(args.paths, options=options)
    except (OSError, ValueError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings = filter_findings(findings, select=select, ignore=ignore)
    if args.format == "dot":
        assert result is not None
        print(result.graph.to_dot())
        for f in findings:
            print(f"// {f.render()}", file=sys.stderr)
    elif args.format == "json":
        doc = {"findings": [f.to_dict() for f in findings]}
        if result is not None:
            doc["graph"] = result.graph.to_json_dict()
        print(json.dumps(doc, indent=2))
    else:
        print(render_text(findings))
        if result is not None:
            g = result.graph
            trunc = " (truncated)" if g.truncated else ""
            print(
                f"static skeleton: {g.task_count} tasks, "
                f"{len(g.edges)} edges, {g.renames} renames{trunc}",
                file=sys.stderr,
            )
    return 1 if findings else 0


if __name__ == "__main__":
    from repro.__main__ import deprecation_note

    deprecation_note("repro.check", "lint|flow")
    raise SystemExit(main())
