"""AST-based directionality linter (the static layer of ``repro.check``).

Analyzes every task construct in a source file — both ``@css_task``
decorated functions and ``#pragma css task`` annotated ones — and
cross-checks the parsed :class:`~repro.core.pragma.ParamSpec` list
against what the body actually does to each parameter.

The analysis is deliberately conservative in the direction of **zero
false positives**: a parameter passed into a call whose effects we
cannot see (``kernels.gemm(a, b, c)``, ``np.matmul(a, b, out=c)``) is
treated as *escaped* — it may have been read or written, so neither
``unwritten-output`` nor ``read-before-write`` fires for it.  Direct
evidence (a subscript assignment, an augmented assignment, a known
mutating method, a call into another task whose own pragma declares the
position written) is required before any ``error`` is reported.

Suppressions: a ``# css: ignore[rule, rule]`` comment on the offending
line silences those rules for that line; placed on the ``def`` line, a
decorator line, or any line of the pragma block (continuation lines
included) it silences them for the whole task; placed in the module
header or docstring it silences them for the whole file.  A bare
``# css: ignore`` silences everything.  Resolution is shared with
``repro.check.flow`` via :mod:`repro.check.suppress`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from ..compiler.translate import (
    CompileError,
    _WAIT_ON_RE,
    iter_sync_pragmas,
    iter_task_pragmas,
)
from ..core.pragma import ParsedPragma, PragmaError, parse_pragma
from ..core.task import Direction
from .findings import Finding
from .suppress import SuppressionIndex

__all__ = ["lint_source", "lint_file", "lint_paths", "TaskSite"]


# ---------------------------------------------------------------------------
# What we know about common callables and methods
# ---------------------------------------------------------------------------

#: Attribute reads that touch metadata, not array contents.
_METADATA_ATTRS = frozenset({
    "shape", "dtype", "ndim", "size", "itemsize", "nbytes", "strides",
    "flags", "base",
})

#: Methods known to read (or copy) but never mutate the receiver.
_PURE_METHODS = frozenset({
    "sum", "mean", "min", "max", "copy", "astype", "tolist", "tobytes",
    "item", "all", "any", "dot", "trace", "diagonal", "nonzero",
    "searchsorted", "argmax", "argmin", "argsort", "std", "var",
    "reshape", "ravel", "flatten", "view", "transpose", "conj", "round",
    "clip", "cumsum", "cumprod", "prod", "repeat", "take", "squeeze",
    "swapaxes", "get", "keys", "values", "items", "index", "count",
    "startswith", "endswith", "split", "join", "strip",
})

#: Methods known to mutate the receiver in place.
_MUTATOR_METHODS = frozenset({
    "sort", "fill", "put", "itemset", "partition", "resize", "setfield",
    "setflags", "append", "extend", "insert", "remove", "pop", "clear",
    "update", "add", "discard", "popitem", "setdefault", "reverse",
})

#: Builtins that read their arguments without retaining or mutating them.
_PURE_BUILTINS = frozenset({
    "len", "int", "float", "bool", "str", "abs", "min", "max", "sum",
    "range", "enumerate", "zip", "print", "isinstance", "repr", "round",
    "sorted", "list", "tuple", "dict", "set", "frozenset", "id", "type",
    "iter", "next", "reversed", "hash", "format", "divmod",
})


# ---------------------------------------------------------------------------
# Task discovery
# ---------------------------------------------------------------------------


@dataclass
class TaskSite:
    """One task construct found in a source file."""

    name: str
    node: ast.FunctionDef
    pragma: Optional[ParsedPragma]
    pragma_text: str
    #: line carrying the clause list (decorator or pragma comment).
    pragma_line: int
    #: literal ``constants={...}`` keys, or ``None`` when the constants
    #: argument exists but is not a literal (disables name checking).
    constants: Optional[frozenset[str]] = frozenset()
    #: extra lines (decorators, def, pragma) whose suppressions apply
    #: to every finding of this task.
    scope_lines: tuple[int, ...] = ()

    @property
    def param_names(self) -> tuple[str, ...]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        return tuple(names)


def _decorator_pragma(dec: ast.expr) -> Optional[tuple[str, Optional[frozenset[str]]]]:
    """``(pragma_text, constants)`` when *dec* is a css_task decorator."""

    if not isinstance(dec, ast.Call):
        return None
    func = dec.func
    name = getattr(func, "id", None) or getattr(func, "attr", None)
    if name not in ("css_task", "__css_task__"):
        return None
    text = ""
    if dec.args:
        first = dec.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            text = first.value
        else:
            return None  # dynamic pragma string: cannot analyze
    constants: Optional[frozenset[str]] = frozenset()
    for kw in dec.keywords:
        if kw.arg != "constants":
            continue
        if isinstance(kw.value, ast.Constant) and kw.value.value is None:
            constants = frozenset()
        elif isinstance(kw.value, ast.Dict) and all(
            isinstance(k, ast.Constant) and isinstance(k.value, str)
            for k in kw.value.keys
        ):
            constants = frozenset(k.value for k in kw.value.keys)
        else:
            constants = None  # not a literal: unknown names allowed
    return text, constants


def _discover(
    tree: ast.Module, source: str, filename: str, findings: list[Finding]
) -> list[TaskSite]:
    sites: list[TaskSite] = []
    by_def_line: dict[int, ast.FunctionDef] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        by_def_line.setdefault(node.lineno, node)
        for dec in node.decorator_list:
            parsed = _decorator_pragma(dec)
            if parsed is None:
                continue
            text, constants = parsed
            scope = tuple(
                {d.lineno for d in node.decorator_list} | {node.lineno}
            )
            sites.append(
                _make_site(node, text, dec.lineno, constants, scope,
                           filename, findings)
            )
            break

    # ``#pragma css task`` comment constructs: the pragmas are comments,
    # so the module parsed as-is above; match each to the def it governs.
    try:
        for payload, pragma_line, def_line in iter_task_pragmas(source, filename):
            if def_line is None:
                findings.append(Finding(
                    filename, pragma_line, 1, "bad-pragma",
                    "'#pragma css task' is not followed by a function "
                    "definition at the same indentation",
                ))
                continue
            node = by_def_line.get(def_line)
            if node is None:
                continue
            # The whole pragma block scopes suppressions: continuation
            # lines and standalone comment lines between the pragma and
            # its def all belong to the construct.
            scope = tuple(range(pragma_line, def_line + 1))
            sites.append(
                _make_site(node, payload, pragma_line, frozenset(), scope,
                           filename, findings)
            )
    except CompileError as exc:
        findings.append(Finding(
            filename, getattr(exc, "lineno", 1) or 1, 1, "bad-pragma",
            str(exc),
        ))

    # Synchronisation pragmas get the same malformed-payload checks the
    # translator applies, so a broken `wait on(...)` or an argumented
    # `barrier` is a lint finding, not a surprise at translation time.
    try:
        for kind, payload, line in iter_sync_pragmas(source, filename):
            if kind == "barrier" and payload:
                findings.append(Finding(
                    filename, line, 1, "bad-pragma",
                    "'#pragma css barrier' takes no arguments",
                ))
            elif kind == "wait" and _WAIT_ON_RE.match(payload) is None:
                findings.append(Finding(
                    filename, line, 1, "bad-pragma",
                    "expected '#pragma css wait on(expression)'",
                ))
    except CompileError:
        pass  # dangling continuation: already reported above
    return sites


def _make_site(
    node: ast.FunctionDef,
    text: str,
    pragma_line: int,
    constants: Optional[frozenset[str]],
    scope: tuple[int, ...],
    filename: str,
    findings: list[Finding],
) -> TaskSite:
    pragma: Optional[ParsedPragma] = None
    try:
        pragma = parse_pragma(text)
    except PragmaError as exc:
        findings.append(Finding(
            filename, pragma_line, 1, "bad-pragma",
            f"invalid task pragma: {exc}", task=node.name,
        ))
    return TaskSite(
        name=node.name, node=node, pragma=pragma, pragma_text=text,
        pragma_line=pragma_line, constants=constants, scope_lines=scope,
    )


# ---------------------------------------------------------------------------
# Body analysis
# ---------------------------------------------------------------------------

# Event kinds, in the order they matter to the rules.
_READ = "read"
_WRITE = "write"
_ESCAPE = "escape"
_REBIND = "rebind"


@dataclass
class _Event:
    line: int
    col: int
    kind: str
    #: human extra ("via task 'foo'", "method sort()", ...)
    detail: str = ""


class _BodyScan(ast.NodeVisitor):
    """Collect per-parameter access events from one task body.

    ``known_tasks`` maps same-file task names to ``(pragma, arg_names)``
    so task-from-task calls can be checked against the callee's own
    declaration (they execute inline under the runtime, so the caller's
    clauses are the only protection the data has).
    """

    def __init__(
        self,
        func: ast.FunctionDef,
        params: Sequence[str],
        known_tasks: dict[str, tuple[ParsedPragma, tuple[str, ...]]],
    ):
        self.params = set(params)
        self.known_tasks = known_tasks
        self.events: dict[str, list[_Event]] = {p: [] for p in params}
        #: (line, col, root name, description) of global/closure mutations
        self.global_mutations: list[tuple[int, int, str, str]] = []
        #: (line, col, caller_param, callee, callee_param, callee_dir)
        self.task_arg_uses: list[tuple[int, int, str, str, str, Direction]] = []
        self._locals: set[str] = set(params)
        self._globals_declared: set[str] = set()
        self._handled: set[int] = set()
        self._collect_bindings(func)

    # -- pass 1: every name ever bound anywhere in the body is "local" --
    def _collect_bindings(self, func: ast.FunctionDef) -> None:
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                self._locals.add(node.id)
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                self._globals_declared.update(node.names)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not func:
                    self._locals.add(node.name)
                args = node.args
                for a in (
                    args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])
                ):
                    self._locals.add(a.arg)
            elif isinstance(node, ast.ClassDef):
                self._locals.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    self._locals.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ExceptHandler) and node.name:
                self._locals.add(node.name)
            elif isinstance(node, (ast.MatchAs, ast.MatchStar)) and node.name:
                # match-pattern captures bind without a Name/Store node
                self._locals.add(node.name)
            elif isinstance(node, ast.MatchMapping) and node.rest:
                self._locals.add(node.rest)
        self._locals -= self._globals_declared

    # -- helpers -------------------------------------------------------
    def _emit(self, name: str, node: ast.AST, kind: str, detail: str = "") -> None:
        if name in self.events:
            self.events[name].append(
                _Event(node.lineno, node.col_offset + 1, kind, detail)
            )

    @staticmethod
    def _root(node: ast.expr) -> tuple[Optional[ast.Name], list[str]]:
        """Peel subscripts/attributes down to the root name, if any."""

        attrs: list[str] = []
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            if isinstance(node, ast.Attribute):
                attrs.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            return node, attrs
        return None, attrs

    def _mutation_target(self, target: ast.expr, detail: str) -> None:
        """Record a write through a subscript/attribute target."""

        root, _attrs = self._root(target)
        if root is None:
            self.generic_visit(target)
            return
        self._handled.add(id(root))
        if root.id in self.params:
            self._emit(root.id, target, _WRITE, detail)
        elif root.id not in self._locals:
            self.global_mutations.append(
                (target.lineno, target.col_offset + 1, root.id, detail)
            )
        # visit index expressions for reads (a[i] reads i)
        node = target
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            if isinstance(node, ast.Subscript):
                self.visit(node.slice)
            node = node.value

    def _assign_target(self, target: ast.expr, detail: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, detail)
            return
        if isinstance(target, ast.Starred):
            self._assign_target(target.value, detail)
            return
        if isinstance(target, ast.Name):
            self._handled.add(id(target))
            if target.id in self.params:
                self._emit(target.id, target, _REBIND, detail)
            return
        self._mutation_target(target, detail)

    # -- statements ----------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._assign_target(target, "assignment")
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._assign_target(node.target, "assignment")
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        op = type(node.op).__name__
        if isinstance(target, ast.Name):
            self._handled.add(id(target))
            if target.id in self.params:
                # In-place operator semantics: mutates the argument
                # object for ndarrays/lists (the repo's idiomatic write).
                self._emit(target.id, target, _READ, "augmented assignment")
                self._emit(target.id, target, _WRITE, "augmented assignment")
            elif target.id in self._globals_declared:
                self.global_mutations.append(
                    (target.lineno, target.col_offset + 1, target.id,
                     f"augmented assignment ({op})")
                )
        else:
            root, _ = self._root(target)
            if root is not None and root.id in self.params:
                self._emit(root.id, target, _READ, "augmented assignment")
            self._mutation_target(target, f"augmented assignment ({op})")
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._handled.add(id(target))
                if target.id in self.params:
                    self._emit(target.id, target, _REBIND, "del")
            else:
                self._mutation_target(target, "del")

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        # Walrus target: a plain-Name rebind (the grammar allows no
        # subscript/attribute targets here).
        target = node.target
        if isinstance(target, ast.Name):
            self._handled.add(id(target))
            if target.id in self.params:
                self._emit(target.id, target, _REBIND, "walrus assignment")
        self.visit(node.value)

    def visit_For(self, node: ast.For) -> None:
        # `for a[i] in ...` / `for p, *rest in ...` assign through the
        # target exactly like an Assign statement does.
        self._assign_target(node.target, "for target")
        self.visit(node.iter)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    visit_AsyncFor = visit_For

    def visit_Match(self, node: ast.Match) -> None:
        self.visit(node.subject)
        for case in node.cases:
            for sub in ast.walk(case.pattern):
                name = None
                if isinstance(sub, (ast.MatchAs, ast.MatchStar)):
                    name = sub.name
                elif isinstance(sub, ast.MatchMapping):
                    name = sub.rest
                if name and name in self.params:
                    self._emit(name, sub, _REBIND, "match capture")
                elif isinstance(sub, ast.MatchValue):
                    self.visit(sub.value)
            if case.guard is not None:
                self.visit(case.guard)
            for stmt in case.body:
                self.visit(stmt)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        callee_task: Optional[str] = None
        pure_callee = False

        if isinstance(func, ast.Name):
            self._handled.add(id(func))
            if func.id in self.known_tasks:
                callee_task = func.id
            elif func.id in _PURE_BUILTINS:
                pure_callee = True
        elif isinstance(func, ast.Attribute):
            # receiver.method(...) — classify by method name when the
            # receiver is rooted at a parameter.
            root, attrs = self._root(func.value)
            method = func.attr
            if root is not None and root.id in self.params:
                self._handled.add(id(root))
                if method in _MUTATOR_METHODS:
                    self._emit(root.id, node, _WRITE, f"method {method}()")
                elif method in _PURE_METHODS:
                    self._emit(root.id, node, _READ, f"method {method}()")
                else:
                    self._emit(root.id, node, _ESCAPE, f"method {method}()")
            elif root is None:
                self.visit(func.value)

        # Arguments.
        callee_info = self.known_tasks.get(callee_task) if callee_task else None
        for pos, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                self.visit(arg.value)
                continue
            if isinstance(arg, ast.Name) and arg.id in self.params:
                self._handled.add(id(arg))
                self._classify_task_arg(node, arg, pos, callee_task,
                                        callee_info, pure_callee)
            else:
                self.visit(arg)
        for kw in node.keywords:
            if isinstance(kw.value, ast.Name) and kw.value.id in self.params:
                self._handled.add(id(kw.value))
                name = kw.value.id
                if pure_callee:
                    self._emit(name, kw.value, _READ, "call argument")
                else:
                    # out=c style keywords may be written.
                    self._emit(name, kw.value, _ESCAPE,
                               f"keyword argument {kw.arg or '**'}")
            else:
                self.visit(kw.value)

    def _classify_task_arg(
        self,
        call: ast.Call,
        arg: ast.Name,
        pos: int,
        callee_task: Optional[str],
        callee_info,
        pure_callee: bool,
    ) -> None:
        name = arg.id
        if callee_info is not None:
            pragma, callee_params = callee_info
            if pos < len(callee_params):
                callee_param = callee_params[pos]
                specs = pragma.specs_for(callee_param)
                direction = specs[0].direction if specs else None
                writes = any(s.direction.writes for s in specs)
                reads = any(s.direction.reads for s in specs)
                if direction is not None:
                    self.task_arg_uses.append((
                        arg.lineno, arg.col_offset + 1, name,
                        callee_task or "?", callee_param, direction,
                    ))
                if writes:
                    self._emit(name, arg, _WRITE,
                               f"passed to task '{callee_task}' "
                               f"parameter '{callee_param}' "
                               f"({'/'.join(sorted(s.direction.value for s in specs))})")
                    if reads:
                        self._emit(name, arg, _READ, "task argument")
                    return
                if reads:
                    self._emit(name, arg, _READ, "task argument")
                    return
            self._emit(name, arg, _ESCAPE, f"task '{callee_task}' argument")
            return
        if pure_callee:
            self._emit(name, arg, _READ, "call argument")
        else:
            self._emit(name, arg, _ESCAPE, "call argument")

    # -- reads ---------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not isinstance(node.ctx, ast.Load):
            self.generic_visit(node)
            return
        root, attrs = self._root(node)
        if root is not None and id(root) not in self._handled:
            self._handled.add(id(root))
            if root.id in self.params:
                kind = _READ
                if attrs and all(a in _METADATA_ATTRS for a in attrs):
                    kind = None  # metadata only: not a data read
                if kind:
                    self._emit(root.id, node, kind, f".{attrs[-1]}" if attrs else "")
        # still visit subscript indices inside the chain
        inner = node
        while isinstance(inner, (ast.Subscript, ast.Attribute)):
            if isinstance(inner, ast.Subscript):
                self.visit(inner.slice)
            inner = inner.value

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if not isinstance(node.ctx, ast.Load):
            self.generic_visit(node)
            return
        root, attrs = self._root(node)
        if root is not None and id(root) not in self._handled:
            self._handled.add(id(root))
            if root.id in self.params:
                if not (attrs and all(a in _METADATA_ATTRS for a in attrs)):
                    self._emit(root.id, node, _READ, "subscript")
        inner = node
        while isinstance(inner, (ast.Subscript, ast.Attribute)):
            if isinstance(inner, ast.Subscript):
                self.visit(inner.slice)
            inner = inner.value

    def visit_Name(self, node: ast.Name) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and node.id in self.params
            and id(node) not in self._handled
        ):
            self._handled.add(id(node))
            self._emit(node.id, node, _READ, "use")


# ---------------------------------------------------------------------------
# Rule evaluation
# ---------------------------------------------------------------------------


def _direction_sets(pragma: ParsedPragma) -> dict[str, set[Direction]]:
    out: dict[str, set[Direction]] = {}
    for spec in pragma.params:
        out.setdefault(spec.name, set()).add(spec.direction)
    return out


def _lint_task(
    site: TaskSite,
    filename: str,
    known_tasks: dict[str, tuple[ParsedPragma, tuple[str, ...]]],
    extra_constants: frozenset[str],
    findings: list[Finding],
) -> None:
    pragma = site.pragma
    if pragma is None:
        return  # bad-pragma already reported
    params = site.param_names
    param_set = set(params)
    t = site.name

    # bad-pragma: declared parameter absent from the signature.
    for spec in pragma.params:
        if spec.name not in param_set:
            findings.append(Finding(
                filename, site.pragma_line, 1, "bad-pragma",
                f"pragma declares parameter '{spec.name}' which is not in "
                f"the signature of '{t}'", task=t, param=spec.name,
            ))

    # unknown-region-name: names in dimension/region bound expressions.
    if site.constants is not None:
        known_names = param_set | site.constants | extra_constants
        for spec in pragma.params:
            used: set[str] = set()
            for dim in spec.dims:
                used |= dim.names()
            for region in spec.regions:
                if region.lower is not None:
                    used |= region.lower.names()
                if region.upper is not None:
                    used |= region.upper.names()
            for name in sorted(used - known_names):
                findings.append(Finding(
                    filename, site.pragma_line, 1, "unknown-region-name",
                    f"bound expression of parameter '{spec.name}' references "
                    f"'{name}', which is neither a parameter of '{t}' nor a "
                    f"known constant", task=t, param=spec.name,
                ))

    scan = _BodyScan(site.node, params, known_tasks)
    scan.visit(site.node)
    directions = _direction_sets(pragma)

    # global-mutation
    for line, col, name, detail in scan.global_mutations:
        findings.append(Finding(
            filename, line, col, "global-mutation",
            f"task '{t}' mutates global/closure object '{name}' "
            f"({detail}); this access is invisible to the dependency "
            f"analysis", task=t, param=name,
        ))

    # opaque-leak
    for line, col, caller_param, callee, callee_param, callee_dir in scan.task_arg_uses:
        dirs = directions.get(caller_param)
        if dirs == {Direction.OPAQUE} and callee_dir is not Direction.OPAQUE:
            findings.append(Finding(
                filename, line, col, "opaque-leak",
                f"task '{t}' passes opaque parameter '{caller_param}' to "
                f"task '{callee}' parameter '{callee_param}'; the inline "
                f"call's directionality gives it no protection", task=t,
                param=caller_param,
            ))

    for p in params:
        events = scan.events[p]
        # A rebound name no longer refers to the argument object (and a
        # conditional rebind makes later writes unprovable either way),
        # so the error rules only count writes before the first rebind.
        first_rebind = next(
            (i for i, ev in enumerate(events) if ev.kind == _REBIND), None
        )
        arg_writes = events if first_rebind is None else events[:first_rebind]
        dirs = directions.get(p)
        if dirs is None:
            # Undeclared: a by-value scalar to the runtime.  Reads are
            # fine; mutations race with every task touching the object.
            for ev in arg_writes:
                if ev.kind == _WRITE:
                    findings.append(Finding(
                        filename, ev.line, ev.col, "undeclared-mutation",
                        f"task '{t}' mutates parameter '{p}' "
                        f"({ev.detail}) but '{p}' appears in no "
                        f"directionality clause", task=t, param=p,
                    ))
            continue
        if dirs == {Direction.OPAQUE}:
            continue  # opaque objects deliberately bypass all analysis
        declared_reads = any(d.reads for d in dirs)
        declared_writes = any(d.writes for d in dirs)

        if not declared_writes:
            for ev in arg_writes:
                if ev.kind == _WRITE:
                    findings.append(Finding(
                        filename, ev.line, ev.col, "input-write",
                        f"task '{t}' writes to parameter '{p}' "
                        f"({ev.detail}) which is declared input-only",
                        task=t, param=p,
                    ))
        else:
            wrote = any(ev.kind in (_WRITE, _ESCAPE) for ev in events)
            if not wrote:
                findings.append(Finding(
                    filename, site.node.lineno, site.node.col_offset + 1,
                    "unwritten-output",
                    f"task '{t}' declares parameter '{p}' as "
                    f"{'/'.join(sorted(d.value for d in dirs))} but never "
                    f"writes it", task=t, param=p,
                ))
            if not declared_reads:
                for ev in events:
                    if ev.kind in (_WRITE, _ESCAPE, _REBIND):
                        break
                    if ev.kind == _READ:
                        findings.append(Finding(
                            filename, ev.line, ev.col, "read-before-write",
                            f"task '{t}' reads output-only parameter '{p}' "
                            f"before its first write; output storage may be "
                            f"a fresh renamed buffer with undefined "
                            f"contents", task=t, param=p,
                        ))
                        break


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def lint_source(
    source: str,
    filename: str = "<source>",
    constants: Iterable[str] = (),
) -> list[Finding]:
    """Lint one source text; returns (unsuppressed) findings."""

    findings: list[Finding] = []
    try:
        tree = ast.parse(source, filename)
    except SyntaxError as exc:
        return [Finding(
            filename, exc.lineno or 1, (exc.offset or 0) + 1, "bad-pragma",
            f"source does not parse: {exc.msg}",
        )]
    sites = _discover(tree, source, filename, findings)
    known_tasks = {
        s.name: (s.pragma, s.param_names)
        for s in sites if s.pragma is not None
    }
    extra = frozenset(constants)
    for site in sites:
        _lint_task(site, filename, known_tasks, extra, findings)

    # Apply suppressions (resolver shared with repro.check.flow).
    suppressions = SuppressionIndex.from_source(source, tree)
    scopes = {s.name: s.scope_lines + (s.pragma_line,) for s in sites}

    kept = [
        f for f in findings
        if not suppressions.is_suppressed(f.rule, f.line, scopes.get(f.task, ()))
    ]
    kept.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return kept


def lint_file(path: str | Path, constants: Iterable[str] = ()) -> list[Finding]:
    path = Path(path)
    return lint_source(
        path.read_text(encoding="utf-8"), str(path), constants=constants
    )


def lint_paths(
    paths: Iterable[str | Path], constants: Iterable[str] = ()
) -> list[Finding]:
    """Lint files and directories (recursing into ``*.py``)."""

    findings: list[Finding] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            targets = sorted(
                p for p in entry.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        else:
            targets = [entry]
        for target in targets:
            findings.extend(lint_file(target, constants=constants))
    return findings
