"""Reporters for linter findings: human text and machine JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable, Sequence

from .findings import ERROR, Finding

__all__ = ["render_text", "render_json", "filter_findings", "summary_line"]


def filter_findings(
    findings: Iterable[Finding],
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
) -> list[Finding]:
    """Keep findings matching *select* (all when empty) minus *ignore*."""

    out = []
    for f in findings:
        if select and f.rule not in select:
            continue
        if f.rule in ignore:
            continue
        out.append(f)
    return out


def summary_line(findings: Sequence[Finding]) -> str:
    if not findings:
        return "clean: no findings"
    by_sev = Counter(f.severity for f in findings)
    errors = by_sev.get(ERROR, 0)
    warnings = len(findings) - errors
    by_rule = Counter(f.rule for f in findings)
    rules = ", ".join(f"{rule}={n}" for rule, n in sorted(by_rule.items()))
    return (
        f"{len(findings)} finding(s): {errors} error(s), "
        f"{warnings} warning(s) ({rules})"
    )


def render_text(findings: Sequence[Finding]) -> str:
    lines = [f.render() for f in findings]
    lines.append(summary_line(findings))
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    doc = {
        "findings": [f.to_dict() for f in findings],
        "counts": {
            "total": len(findings),
            "errors": sum(1 for f in findings if f.severity == ERROR),
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)
