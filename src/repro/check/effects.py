"""Per-task effect footprints for the whole-program analyzer.

A task's pragma is a complete statement of its side effects on its
arguments — that is the SMPSs contract (sections II and V.A of the
paper).  This module turns a parsed pragma into a reusable
:class:`TaskEffect` and evaluates it at an abstract submission site
into a list of :class:`Access` records: *which parameter positions are
read/written, over which array region*, with region bounds resolved
over the mixed concrete/interval environment the abstract interpreter
maintains.

Regions are uniformly represented as :class:`SymRegion` — a box of
per-dimension ``(lo, hi)`` :class:`~repro.check.intervals.Interval`
pairs.  A fully concrete box converts to the runtime's exact
:class:`~repro.core.regions.Region` (so the static graph can reproduce
the runtime's chain semantics bit for bit); a box containing genuine
intervals supports only *may*-queries, which is all the conservative
rules need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.pragma import ParsedPragma, PragmaError
from ..core.regions import FULL_DIM, Region, RegionError
from ..core.task import Direction
from .intervals import TOP, Interval

__all__ = ["Access", "SymRegion", "TaskEffect"]


@dataclass(frozen=True)
class SymRegion:
    """A hyper-rectangle with interval-valued bounds."""

    #: per-dimension inclusive (lo, hi); TOP bounds mean "unknown".
    dims: tuple[tuple[Interval, Interval], ...]

    @classmethod
    def full(cls, ndim: int = 1) -> "SymRegion":
        return cls(((Interval.const(0), TOP),) * ndim)

    @classmethod
    def from_region(cls, region: Region) -> "SymRegion":
        dims = []
        for lo, hi in region.intervals:
            if (lo, hi) == FULL_DIM:
                dims.append((Interval.const(0), TOP))
            else:
                dims.append((Interval.const(lo), Interval.const(hi)))
        return cls(tuple(dims))

    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def is_exact(self) -> bool:
        return self.to_region() is not None

    def to_region(self) -> Optional[Region]:
        """The exact runtime region, or ``None`` when any bound is
        symbolic (an unknown upper bound maps to the FULL sentinel)."""

        out = []
        for lo, hi in self.dims:
            if lo.is_constant and lo.constant == 0 and hi.is_top:
                out.append(FULL_DIM)
                continue
            if not (lo.is_constant and hi.is_constant):
                return None
            out.append((lo.constant, hi.constant))
        try:
            return Region(tuple(out))
        except RegionError:
            return None

    def may_overlap(self, other: "SymRegion") -> bool:
        """False only when the boxes are provably disjoint."""

        if self.ndim != other.ndim:
            return True  # rank mismatch aliases conservatively
        for (alo, ahi), (blo, bhi) in zip(self.dims, other.dims):
            if ahi.must_precede(blo) or bhi.must_precede(alo):
                return False
        return True

    def hull(self, other: "SymRegion") -> "SymRegion":
        if self.ndim != other.ndim:
            return SymRegion.full(max(self.ndim, other.ndim))
        return SymRegion(tuple(
            (alo.join(blo), ahi.join(bhi))
            for (alo, ahi), (blo, bhi) in zip(self.dims, other.dims)
        ))

    def __str__(self) -> str:
        region = self.to_region()
        if region is not None:
            return str(region)
        return "".join("{%s..%s}" % (lo, hi) for lo, hi in self.dims)


@dataclass(frozen=True)
class Access:
    """One parameter's effect at one abstract submission site."""

    param: str
    direction: Direction
    #: ``None`` = the whole object (no region specifier).
    region: Optional[SymRegion] = None

    @property
    def reads(self) -> bool:
        return self.direction.reads

    @property
    def writes(self) -> bool:
        return self.direction.writes


def _as_abstract_int(value):
    """Map an abstract argument value into the expression domain."""

    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return value
    if isinstance(value, Interval):
        return value
    return None


@dataclass(frozen=True)
class TaskEffect:
    """The reusable effect summary of one task definition."""

    name: str
    param_names: tuple[str, ...]
    pragma: ParsedPragma
    constants: dict
    high_priority: bool = False

    @classmethod
    def from_pragma(
        cls,
        name: str,
        pragma: ParsedPragma,
        param_names: Sequence[str],
        constants: Optional[dict] = None,
    ) -> "TaskEffect":
        return cls(
            name=name,
            param_names=tuple(param_names),
            pragma=pragma,
            constants=dict(constants or {}),
            high_priority=pragma.high_priority,
        )

    def directions_of(self, param: str) -> set[Direction]:
        return {s.direction for s in self.pragma.specs_for(param)}

    def position_of(self, param: str) -> Optional[int]:
        try:
            return self.param_names.index(param)
        except ValueError:
            return None

    def footprint(
        self,
        arg_values: dict,
        shapes: Optional[dict] = None,
    ) -> list[Access]:
        """Evaluate every parameter appearance at one submission site.

        *arg_values* maps parameter names to abstract values (ints and
        :class:`Interval` objects participate in bound expressions;
        everything else is opaque to them).  *shapes* optionally maps
        parameter names to known concrete array shapes, used to resolve
        ``{}`` region specifiers and missing extents.
        """

        env = {}
        for pname, value in arg_values.items():
            abstract = _as_abstract_int(value)
            if abstract is not None:
                env[pname] = abstract
        for cname, cvalue in self.constants.items():
            env.setdefault(cname, cvalue)

        accesses: list[Access] = []
        for spec in self.pragma.params:
            if not spec.regions:
                accesses.append(Access(spec.name, spec.direction))
                continue
            shape = (shapes or {}).get(spec.name)
            dims: list[tuple[Interval, Interval]] = []
            for axis, rspec in enumerate(spec.regions):
                extent = None
                if axis < len(spec.dims):
                    try:
                        extent = spec.dims[axis].evaluate_symbolic(env)
                    except PragmaError:
                        extent = None
                if extent is None and shape is not None and axis < len(shape):
                    extent = shape[axis]
                try:
                    bounds = rspec.symbolic_bounds(env, extent)
                except PragmaError:
                    bounds = (TOP, TOP)
                if bounds is None:
                    dims.append((Interval.const(0), TOP))
                else:
                    lo, hi = (Interval.of(b) if isinstance(b, (int, Interval))
                              else TOP for b in bounds)
                    dims.append((lo, hi))
            accesses.append(
                Access(spec.name, spec.direction, SymRegion(tuple(dims)))
            )
        return accesses
