"""Finding records and the rule catalogue of ``repro.check``.

The whole SMPSs model rests on directionality clauses being truthful:
the runtime builds the task graph from ``input``/``output``/``inout``
declarations (section II of the paper), so a task body that contradicts
its own pragma silently races past renaming and dependency analysis.
Each rule below names one way an annotation can lie.

Severities:

* ``error`` — the annotation is provably wrong (or unparseable); the
  program can produce racy or incorrect results under the runtime.
* ``warning`` — the annotation is suspicious (over- or under-declared)
  but static analysis cannot prove a race; typically a performance or
  latent-correctness problem.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "RULES", "ERROR", "WARNING", "rule_severity"]

ERROR = "error"
WARNING = "warning"

#: rule code -> (severity, one-line description).  Codes are stable;
#: they are the names used by ``# css: ignore[...]`` suppressions and
#: the ``--select`` / ``--ignore`` CLI filters.
RULES: dict[str, tuple[str, str]] = {
    "input-write": (
        ERROR,
        "task body writes (assignment, augmented assignment, or mutating "
        "method call) to a parameter declared input-only",
    ),
    "undeclared-mutation": (
        ERROR,
        "task body mutates a parameter that appears in no directionality "
        "clause (undeclared parameters are by-value scalars to the runtime)",
    ),
    "unwritten-output": (
        WARNING,
        "parameter declared output/inout is never written by the task body "
        "(and never escapes into a call that could write it)",
    ),
    "read-before-write": (
        WARNING,
        "task body reads an output-only parameter before its first write "
        "(output storage may be a fresh renamed buffer with undefined "
        "contents)",
    ),
    "global-mutation": (
        WARNING,
        "task body mutates a global or closure object; such accesses are "
        "invisible to the dependency analysis and race across workers",
    ),
    "unknown-region-name": (
        ERROR,
        "a dimension or array-region bound expression references a name "
        "that is neither a parameter nor a known constant",
    ),
    "opaque-leak": (
        WARNING,
        "task body passes an opaque parameter to another task's "
        "dependency-carrying (input/output/inout) parameter; the inner "
        "call runs inline and the opaque object bypasses all analysis",
    ),
    "bad-pragma": (
        ERROR,
        "the pragma does not parse, or declares a parameter that is not "
        "in the function signature",
    ),
    # -- whole-program rules (repro.check.flow) -------------------------
    "flow-overlapping-writes": (
        ERROR,
        "two task submissions write overlapping array regions of the same "
        "datum where neither region contains the other; partial-overlap "
        "writes defeat renaming and the runtime's region chains",
    ),
    "flow-opaque-race": (
        ERROR,
        "a datum is passed opaque to one task and written through a "
        "tracked (input/output/inout) parameter of another in the same "
        "synchronisation epoch; the opaque access is invisible to the "
        "dependency analysis and races against the write",
    ),
    "flow-missing-barrier": (
        ERROR,
        "driver code directly reads or writes a datum that a pending "
        "task may still be writing (or reading, for driver writes) "
        "without an intervening barrier() or wait_on()",
    ),
    "flow-dead-barrier": (
        WARNING,
        "a barrier is reached with provably zero tasks submitted since "
        "the previous synchronisation point; it only costs latency",
    ),
    "flow-serialization": (
        WARNING,
        "nearly every task between two synchronisation points sits on a "
        "single read-after-write chain through one datum; the region is "
        "effectively serial",
    ),
    "flow-renaming-pressure": (
        WARNING,
        "a loop forces the runtime to rename the same datum many times; "
        "every rename allocates a private buffer (paper section III)",
    ),
}


def rule_severity(rule: str) -> str:
    return RULES.get(rule, (ERROR, ""))[0]


@dataclass(frozen=True)
class Finding:
    """One linter (or sanitizer) diagnostic."""

    file: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = ""
    #: task the finding belongs to ("" for file-level findings).
    task: str = ""
    #: offending parameter, when there is one.
    param: str = ""

    def __post_init__(self) -> None:
        if not self.severity:
            object.__setattr__(self, "severity", rule_severity(self.rule))

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def location(self) -> str:
        return f"{self.file}:{self.line}:{self.col}"

    def render(self) -> str:
        task = f" [{self.task}]" if self.task else ""
        return (
            f"{self.location()}: {self.severity} {self.rule}: "
            f"{self.message}{task}"
        )

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "task": self.task,
            "param": self.param,
        }
