"""Whole-program static task-graph extraction (``repro.check.flow``).

:mod:`repro.check.astlint` checks each task *body* against its own
pragma.  This module checks the *driver program*: it abstractly
interprets the module that submits the tasks — loops boundedly
unrolled, block indices and region bounds evaluated over the
:mod:`~repro.check.intervals` domain, datum identities tracked through
containers and hyper-matrices — and replays every abstract submission
through a faithful static mirror of
:class:`repro.core.dependencies.DependencyTracker`.

Two things come out:

* a **static task-graph skeleton** — same task ids, edges and edge
  kinds the runtime recorder would produce for the same driver (see
  ``repro.obs diff`` for the static-vs-recorded comparison), and
* **whole-program findings** no per-task check can see, because they
  live *between* submissions: overlapping-region write hazards, opaque
  sharing races, direct data access without an intervening barrier,
  barriers that synchronise nothing, serialization bottlenecks and
  renaming pressure.

The analysis is deliberately one-sided, like the rest of
``repro.check``: *error*-severity findings are only emitted for facts
the interpreter can prove on every modelled path (concrete indices,
unconditional code); anything unknown stays silent.  Conditionally
executed or loop-summarized submissions still contribute to the
skeleton, flagged as such, but never to error findings.
"""

from __future__ import annotations

import ast
import importlib.util
import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from ..compiler.translate import CompileError, translate_source
from ..core.pragma import PragmaError, parse_pragma
from ..core.task import Direction
from .astlint import _decorator_pragma
from .effects import SymRegion, TaskEffect
from .findings import Finding
from .intervals import Interval
from .suppress import SuppressionIndex

__all__ = [
    "FlowOptions",
    "FlowResult",
    "StaticGraph",
    "StaticTask",
    "flow_source",
    "flow_file",
    "flow_paths",
]

_PRAGMA_MARK_RE = re.compile(r"^\s*#\s*pragma\s+css\b", re.MULTILINE)

# Tuning knobs for the advisory rules; deliberately conservative so the
# shipped apps/examples stay clean (see tests/test_check_flow.py).
_SERIAL_MIN_CHAIN = 4       # RAW chain length worth flagging
_SERIAL_DOMINANCE = 0.75    # ...covering at least this share of the epoch
_RENAME_PRESSURE_MIN = 8    # renamed versions per (datum, loop)


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------

class _Unknown:
    """The single 'no information' value (never a finding source)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unknown>"


UNKNOWN = _Unknown()


class _Intrinsic:
    """A named non-data handle: modules, runtime API, numpy, markers."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def attr(self, attr: str) -> "_Intrinsic":
        return _Intrinsic(f"{self.name}.{attr}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<intrinsic {self.name}>"


class _RuntimeHandle:
    """Abstract ``SmpssRuntime`` / ``RecordingRuntime`` instance."""

    __slots__ = ()


class _RangeValue:
    __slots__ = ("start", "stop", "step")

    def __init__(self, start, stop, step):
        self.start, self.stop, self.step = start, stop, step

    def concrete(self) -> Optional[range]:
        if all(isinstance(v, int) and not isinstance(v, bool)
               for v in (self.start, self.stop, self.step)) and self.step != 0:
            return range(self.start, self.stop, self.step)
        return None

    def hull(self) -> Optional[Interval]:
        """Interval hull when only some bounds are known."""

        conc = self.concrete()
        if conc is not None:
            if len(conc) == 0:
                return None
            return Interval.from_range(self.start, self.stop, self.step)
        lo = self.start if isinstance(self.start, int) else None
        if isinstance(self.start, Interval):
            lo = self.start.lo
        return Interval(lo, None)


class _BoundMethod:
    __slots__ = ("obj", "method")

    def __init__(self, obj, method: str):
        self.obj, self.method = obj, method


class Datum:
    """One runtime object identity (array, hyper-matrix, list, ...)."""

    __slots__ = (
        "uid", "label", "kind", "shape", "renamable", "maybe_absent",
        "children", "attrs", "chains", "region_mode", "opaque_uses",
        "tracked_uses", "tainted",
    )

    def __init__(self, uid: int, label: str, kind: str = "array",
                 shape=None, renamable: bool = True,
                 maybe_absent: bool = False):
        self.uid = uid
        self.label = label
        self.kind = kind            # array | hyper | row | list | dict | object
        self.shape = shape          # tuple of ints when concretely known
        self.renamable = renamable
        self.maybe_absent = maybe_absent
        self.children: dict = {}    # container slots, concrete key -> value
        self.attrs: dict = {}       # known metadata (hyper: n, m)
        # -- static dependency-tracker state --
        self.chains: dict = {}      # None | SymRegion -> _Chain
        self.region_mode = False
        self.opaque_uses: list = []     # StaticTask
        self.tracked_uses: list = []    # (StaticTask, Direction)
        self.tainted = False        # an unknown-index store happened

    @property
    def is_container(self) -> bool:
        return self.kind in ("hyper", "row", "list", "dict")

    def descendants(self) -> Iterable["Datum"]:
        yield self
        for child in self.children.values():
            if isinstance(child, Datum):
                yield from child.descendants()


# ---------------------------------------------------------------------------
# Static mirror of the dependency tracker
# ---------------------------------------------------------------------------

@dataclass
class StaticTask:
    """One abstract submission, ids counted exactly like the runtime's."""

    task_id: int
    name: str
    file: str
    line: int
    high_priority: bool = False
    conditional: bool = False   # submitted under an unknown branch
    summarized: bool = False    # submitted from a folded loop iteration
    epoch: int = 0
    loops: tuple = ()           # enclosing loop lines, innermost last
    finished: bool = False
    preds: set = field(default_factory=set)

    @property
    def certain(self) -> bool:
        return not (self.conditional or self.summarized)


class _Version:
    __slots__ = ("producer", "readers", "kind")

    def __init__(self, producer: Optional[StaticTask], kind: str):
        self.producer = producer
        self.readers: list[StaticTask] = []
        self.kind = kind  # initial | same | fresh | clone

    def pending_readers(self, exclude: Optional[StaticTask] = None):
        return [r for r in self.readers
                if not r.finished and r is not exclude]


class _Chain:
    __slots__ = ("key", "current")

    def __init__(self, key: Optional[SymRegion]):
        self.key = key
        self.current = _Version(None, "initial")

    def roll(self, producer: StaticTask, kind: str = "same") -> None:
        self.current = _Version(producer, kind)


class StaticGraph:
    """The extracted skeleton, shaped like a ``RecordedProgram``."""

    FORMAT = "repro.staticgraph"

    def __init__(self, source: str, entry: Optional[str]):
        self.source = source
        self.entry = entry
        self.tasks: list[StaticTask] = []
        self.edges: dict[tuple[int, int], str] = {}
        self.stream: list = []
        self.renames = 0
        self.truncated = False

    @property
    def task_count(self) -> int:
        return len(self.tasks)

    def to_json_dict(self) -> dict:
        return {
            "format": self.FORMAT,
            "version": 1,
            "source": self.source,
            "entry": self.entry,
            "truncated": self.truncated,
            "renames": self.renames,
            "tasks": [[t.task_id, t.name, t.high_priority]
                      for t in self.tasks],
            "edges": [[p, s, k]
                      for (p, s), k in sorted(self.edges.items())],
            "stream": list(self.stream),
            "details": [
                {"id": t.task_id, "file": t.file, "line": t.line,
                 "conditional": t.conditional, "summarized": t.summarized}
                for t in self.tasks
            ],
        }

    def to_dot(self) -> str:
        styles = {"true": "solid", "anti": "dashed", "output": "dotted"}
        lines = [
            "digraph static_taskgraph {",
            "  rankdir=TB;",
            '  node [shape=box, style=filled, fillcolor="#eef3fb"];',
        ]
        for t in self.tasks:
            extras = ", peripheries=2" if t.high_priority else ""
            if t.conditional or t.summarized:
                extras += ', fillcolor="#f5f0e1"'
            lines.append(
                f'  t{t.task_id} [label="{t.task_id}: {t.name}"{extras}];'
            )
        for (p, s), kind in sorted(self.edges.items()):
            style = styles.get(kind, "solid")
            lines.append(f'  t{p} -> t{s} [style={style}, label="{kind}"];')
        lines.append("}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Options / result
# ---------------------------------------------------------------------------

@dataclass
class FlowOptions:
    """Knobs for the abstract interpreter."""

    max_unroll: int = 128       # full-unroll budget per loop
    max_tasks: int = 60000      # abstract submissions before truncating
    max_steps: int = 400000     # executed statements before truncating
    max_depth: int = 40         # interprocedural inlining depth


@dataclass
class FlowResult:
    findings: list[Finding]
    graph: StaticGraph

    @property
    def truncated(self) -> bool:
        return self.graph.truncated


# ---------------------------------------------------------------------------
# Control-flow signals and module records
# ---------------------------------------------------------------------------

class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _OutOfBudget(Exception):
    pass


class _Env:
    __slots__ = ("vars", "parent")

    def __init__(self, parent: Optional["_Env"] = None):
        self.vars: dict = {}
        self.parent = parent

    def lookup(self, name: str):
        env: Optional[_Env] = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        raise KeyError(name)

    def assign(self, name: str, value) -> None:
        self.vars[name] = value


@dataclass
class _Module:
    name: str               # dotted name ("" for the root file)
    path: str               # reported in findings
    env: _Env
    line_offset: int        # 1 for translated pragma sources


@dataclass
class _TaskDef:
    effect: Optional[TaskEffect]    # None when the pragma failed to parse
    node: ast.FunctionDef
    module: _Module


@dataclass
class _Func:
    node: object            # FunctionDef | Lambda
    module: _Module
    env: _Env               # defining scope (for closures)


# Names importable from anywhere in the ``repro`` package that the
# interpreter models natively instead of loading source for.
_API_INTRINSICS = frozenset({
    "SmpssRuntime", "RecordingRuntime", "record_program",
    "simulate_program", "css_task", "barrier", "wait_on",
    "current_runtime", "SharedArena", "arena_array", "HyperMatrix",
    "Representant", "RepresentantTable",
})

_NP_CONSTRUCTORS = frozenset({
    "zeros", "ones", "empty", "full", "eye", "identity", "arange",
    "linspace", "array", "asarray", "ascontiguousarray", "copy",
    "zeros_like", "ones_like", "empty_like", "full_like",
})

_RNG_METHODS = frozenset({
    "standard_normal", "random", "normal", "uniform", "integers",
    "permutation", "choice",
})

_READER_BUILTINS = frozenset({
    "print", "sum", "min", "max", "abs", "any", "all", "sorted",
    "float", "int", "str", "repr", "bool", "round",
})

_PASSTHROUGH_BUILTINS = frozenset({
    "isinstance", "hasattr", "getattr", "setattr", "id", "type",
    "divmod", "map", "filter", "next", "iter", "format", "vars",
    "globals", "callable", "hash", "pow", "ord", "chr",
})

# Method tables, matching the dynamic-world assumptions in astlint.
_MUTATOR_METHODS = frozenset({
    "fill", "sort", "resize", "put", "setfield", "itemset", "partition",
    "byteswap", "setflags",
})
_PURE_METHODS = frozenset({
    "copy", "sum", "mean", "max", "min", "all", "any", "tolist", "item",
    "astype", "dot", "trace", "std", "var", "argmax", "argmin", "ravel",
    "flatten", "transpose", "reshape", "round", "prod", "nonzero",
    "tobytes", "view", "conj", "diagonal", "cumsum", "cumprod",
})
_LIST_METHODS = frozenset({
    "append", "extend", "insert", "pop", "remove", "clear", "reverse",
    "index", "count",
})
_METADATA_ATTRS = frozenset({
    "shape", "dtype", "ndim", "size", "itemsize", "nbytes", "n", "m",
    "flags", "strides", "name", "task_id", "block",
})


def _concrete_int(value) -> Optional[int]:
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


def _concrete_key(value):
    """A usable container key: int, str, or tuple of those."""

    if isinstance(value, bool):
        return None
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, tuple):
        parts = tuple(_concrete_key(v) for v in value)
        if any(p is None for p in parts):
            return None
        return parts
    return None


def _is_scalarish(value) -> bool:
    """Would the runtime pass this argument by value (untracked)?"""

    return (
        value is None
        or isinstance(value, (bool, int, float, complex, str, bytes,
                              tuple, frozenset, Interval))
    )


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------

class _Interp:
    def __init__(self, options: FlowOptions, root_path: str,
                 entry: Optional[str]):
        self.opt = options
        self.graph = StaticGraph(root_path, entry)
        self.findings: list[Finding] = []

        self._datum_ids = 0
        self._steps = 0
        self._depth = 0
        self.runtime_depth = 0
        self.cond_depth = 0
        self.summarized_depth = 0
        self.loop_stack: list[int] = []     # source lines of open loops

        self.epoch = 0
        self._live: list[StaticTask] = []
        self._epoch_tasks: list[StaticTask] = []
        self._certain_since_sync = 0
        self._maybe_since_sync = 0
        self._task_by_id: dict[int, StaticTask] = {}

        # serialization runs: datum uid -> current RAW chain of tasks
        self._runs: dict[int, list[StaticTask]] = {}
        self._best_runs: dict[int, list[StaticTask]] = {}
        # rename events: (datum, task) pairs
        self._renames: list[tuple[Datum, StaticTask]] = []

        self._modules: dict[str, _Module] = {}      # by resolved path
        self._loading: set[str] = set()
        self._module_stack: list[_Module] = []
        self._reported: set = set()

    # -- small helpers --------------------------------------------------

    @property
    def module(self) -> _Module:
        return self._module_stack[-1]

    def _new_datum(self, label: str, **kw) -> Datum:
        self._datum_ids += 1
        return Datum(self._datum_ids, label, **kw)

    def _line(self, node) -> int:
        return getattr(node, "lineno", 1) - self.module.line_offset

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.opt.max_steps:
            self.graph.truncated = True
            raise _OutOfBudget

    def _report(self, rule: str, node, message: str, *,
                dedup_key=None, task: str = "", param: str = "") -> None:
        line = self._line(node)
        key = dedup_key if dedup_key is not None else (rule, line)
        key = (self.module.path, rule) + (key if isinstance(key, tuple)
                                          else (key,))
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(Finding(
            self.module.path, line, getattr(node, "col_offset", 0) + 1,
            rule, message, task=task, param=param,
        ))

    # -- module loading -------------------------------------------------

    def load_root(self, source: str, path: str, module_name: str) -> _Module:
        module = self._make_module(source, path, module_name)
        self._exec_module(module, source)
        return module

    def _make_module(self, source: str, path: str, name: str) -> _Module:
        offset = 0
        if _PRAGMA_MARK_RE.search(source):
            # Looks like an annotated program: analyze the translated
            # form.  Docstrings quoting pragmas can false-trigger the
            # cheap regex, so an untranslatable file is analyzed as-is.
            try:
                source = translate_source(source, path)
                offset = 1
            except (CompileError, SyntaxError):
                pass
        env = _Env()
        env.assign("__name__", name)
        env.assign("__file__", path)
        module = _Module(name=name, path=path, env=env, line_offset=offset)
        module._translated_source = source  # type: ignore[attr-defined]
        return module

    def _exec_module(self, module: _Module, original_source: str) -> None:
        source = getattr(module, "_translated_source", original_source)
        tree = ast.parse(source, filename=module.path)
        self._module_stack.append(module)
        try:
            self._exec_block(tree.body, module.env)
        except (_OutOfBudget, _Return):
            pass
        finally:
            self._module_stack.pop()

    def _load_module(self, dotted: str):
        """Import by dotted name: intrinsic namespaces or repro source."""

        top = dotted.split(".", 1)[0]
        if top == "numpy":
            return _Intrinsic("numpy" + dotted[len("numpy"):])
        if top != "repro":
            return _Intrinsic(dotted)
        try:
            spec = importlib.util.find_spec(dotted)
        except (ImportError, ValueError, ModuleNotFoundError):
            spec = None
        if spec is None or not spec.origin or not spec.origin.endswith(".py"):
            return _Intrinsic(dotted)
        path = spec.origin
        if path in self._modules:
            return self._modules[path]
        if dotted in self._loading:
            return _Intrinsic(dotted)   # import cycle: degrade gracefully
        self._loading.add(dotted)
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError:
            self._loading.discard(dotted)
            return _Intrinsic(dotted)
        module = self._make_module(source, path, dotted)
        self._modules[path] = module
        try:
            self._exec_module(module, source)
        finally:
            self._loading.discard(dotted)
        return module

    def _resolve_import_base(self, node: ast.ImportFrom) -> str:
        if not node.level:
            return node.module or ""
        pkg = self.module.name
        if pkg and not self.module.path.endswith("__init__.py"):
            pkg = pkg.rsplit(".", 1)[0] if "." in pkg else ""
        try:
            return importlib.util.resolve_name(
                "." * node.level + (node.module or ""), pkg or "repro"
            )
        except (ImportError, ValueError):
            return node.module or ""

    # -- synchronisation ------------------------------------------------

    def _sync(self, node=None, explicit: bool = False) -> None:
        if explicit and self.runtime_depth > 0 and self.cond_depth == 0 \
                and self.summarized_depth == 0 \
                and self._certain_since_sync == 0 \
                and self._maybe_since_sync == 0:
            self._report(
                "flow-dead-barrier", node,
                "barrier synchronises zero tasks: no submission can have "
                "happened since the previous synchronisation point",
            )
        if explicit and self.runtime_depth > 0:
            self.graph.stream.append(["barrier"])
        self._flush_serialization()
        for t in self._live:
            t.finished = True
        self._live.clear()
        self._epoch_tasks.clear()
        self._runs.clear()
        self._certain_since_sync = 0
        # A sync reached under an unknown branch (or in a folded loop
        # body) may not happen on every real execution: a later barrier
        # can no longer be *proved* dead.
        self._maybe_since_sync = (
            1 if (self.cond_depth > 0 or self.summarized_depth > 0) else 0
        )
        self.epoch += 1

    def _finish_transitive(self, task: StaticTask) -> None:
        stack = [task]
        while stack:
            t = stack.pop()
            if t.finished:
                continue
            t.finished = True
            stack.extend(self._task_by_id[p] for p in t.preds)

    def _wait_on(self, value, node) -> None:
        if self.runtime_depth == 0 or not isinstance(value, Datum):
            return
        producers = [
            c.current.producer for d in value.descendants()
            for c in d.chains.values()
            if c.current.producer is not None and not c.current.producer.finished
        ]
        if not producers:
            return
        latest = max(producers, key=lambda t: t.task_id)
        self.graph.stream.append(["wait", latest.task_id])
        for p in producers:
            self._finish_transitive(p)

    # -- the static dependency tracker ----------------------------------

    def _edge(self, pred: StaticTask, succ: StaticTask, kind: str) -> None:
        if pred is succ or pred.finished:
            return
        if pred.task_id in succ.preds:
            return      # first kind wins, like TaskGraph.add_dependency
        succ.preds.add(pred.task_id)
        self.graph.edges[(pred.task_id, succ.task_id)] = kind

    def _rename(self, datum: Datum, task: StaticTask) -> None:
        self.graph.renames += 1
        self._renames.append((datum, task))

    def _track(self, task: StaticTask, datum: Datum, direction: Direction,
               region: Optional[SymRegion], node) -> None:
        if direction is Direction.OPAQUE:
            self._note_opaque(task, datum, node)
            return
        self._note_tracked(task, datum, direction, node)
        if region is None and datum.region_mode:
            ndim = len(datum.shape) if datum.shape else 1
            region = SymRegion.full(ndim)
        if region is None:
            self._track_whole(task, datum, direction, node)
        else:
            self._track_region(task, datum, direction, region, node)

    def _track_whole(self, task: StaticTask, datum: Datum,
                     direction: Direction, node) -> None:
        chain = datum.chains.get(None)
        if chain is None:
            chain = datum.chains[None] = _Chain(None)
        cur = chain.current
        producer_pending = (cur.producer is not None
                            and not cur.producer.finished)
        if direction is Direction.INPUT:
            if producer_pending:
                self._edge(cur.producer, task, "true")
                self._note_run(datum, cur.producer, task, extend=False)
            cur.readers.append(task)
            return
        if direction is Direction.OUTPUT:
            hazard = producer_pending or cur.pending_readers(task)
            if hazard and datum.renamable:
                self._rename(datum, task)
                chain.roll(task, "fresh")
            else:
                if producer_pending:
                    self._edge(cur.producer, task, "output")
                for r in cur.pending_readers(task):
                    self._edge(r, task, "anti")
                chain.roll(task, "same")
            self._runs.pop(datum.uid, None)
            return
        # INOUT
        if producer_pending:
            self._edge(cur.producer, task, "true")
            self._note_run(datum, cur.producer, task, extend=True)
        readers = cur.pending_readers(task)
        if readers and datum.renamable:
            self._rename(datum, task)
            kind = "clone"
        else:
            for r in readers:
                self._edge(r, task, "anti")
            kind = "same"
        cur.readers.append(task)
        chain.roll(task, kind)

    def _track_region(self, task: StaticTask, datum: Datum,
                      direction: Direction, region: SymRegion, node) -> None:
        if not datum.region_mode:
            whole = datum.chains.get(None)
            if whole is not None and whole.current.kind in ("fresh", "clone"):
                self._report(
                    "flow-overlapping-writes", node,
                    f"region access to '{datum.label}' whose current "
                    "version lives in a renamed buffer; the runtime "
                    "raises DependencyError here — barrier before mixing "
                    "whole-object renaming with array regions",
                    dedup_key=(datum.uid, "region-after-rename"),
                    task=task.name,
                )
            datum.region_mode = True
        overlapping = [
            c for key, c in datum.chains.items()
            if key is None or key.may_overlap(region)
        ]
        target = datum.chains.get(region)
        if target is None:
            target = datum.chains[region] = _Chain(region)
        if not direction.writes:
            for chain in overlapping:
                p = chain.current.producer
                if p is not None and not p.finished:
                    self._edge(p, task, "true")
            target.current.readers.append(task)
            return
        # write (OUTPUT / INOUT over a region)
        for chain in overlapping:
            if chain is not target:
                self._check_partial_overlap(task, datum, region, chain, node)
            p = chain.current.producer
            if p is not None and not p.finished:
                self._edge(p, task, "true" if direction.reads else "output")
            for r in chain.current.pending_readers(task):
                self._edge(r, task, "anti")
        rolled = set()
        for chain in [target] + overlapping:
            if id(chain) in rolled:
                continue
            rolled.add(id(chain))
            chain.roll(task, "same")

    def _check_partial_overlap(self, task: StaticTask, datum: Datum,
                               region: SymRegion, chain: _Chain,
                               node) -> None:
        other = chain.current.producer
        if chain.key is None or other is None:
            return
        if not (task.certain and other.certain):
            return
        a, b = region.to_region(), chain.key.to_region()
        if a is None or b is None:
            return          # symbolic bounds: cannot prove, stay silent
        if a.overlaps(b) and not a.contains(b) and not b.contains(a):
            self._report(
                "flow-overlapping-writes", node,
                f"task '{task.name}' writes {a} of '{datum.label}' while "
                f"task '{other.name}' (line {other.line}) wrote {b}: the "
                "regions overlap but neither contains the other, a "
                "partial-overlap write hazard renaming cannot resolve",
                dedup_key=(datum.uid, task.line, other.line),
                task=task.name,
            )

    def _note_opaque(self, task: StaticTask, datum: Datum, node) -> None:
        datum.opaque_uses.append(task)
        for other, direction in datum.tracked_uses:
            self._opaque_pair(task, other, direction, datum, node)

    def _note_tracked(self, task: StaticTask, datum: Datum,
                      direction: Direction, node) -> None:
        datum.tracked_uses.append((task, direction))
        for other in datum.opaque_uses:
            self._opaque_pair(other, task, direction, datum, node)

    def _opaque_pair(self, opaque_task: StaticTask, tracked_task: StaticTask,
                     direction: Direction, datum: Datum, node) -> None:
        if opaque_task is tracked_task:
            return
        if not direction.writes:
            return
        if opaque_task.epoch != tracked_task.epoch:
            return      # a barrier orders the two submissions
        if not (opaque_task.certain and tracked_task.certain):
            return
        self._report(
            "flow-opaque-race", node,
            f"'{datum.label}' is passed opaque to task "
            f"'{opaque_task.name}' (line {opaque_task.line}) and written "
            f"through a tracked parameter by task '{tracked_task.name}' "
            f"(line {tracked_task.line}) in the same synchronisation "
            "epoch; the runtime cannot order the opaque access against "
            "that write",
            dedup_key=(datum.uid, opaque_task.line, tracked_task.line),
            task=tracked_task.name,
        )

    def _note_run(self, datum: Datum, producer: StaticTask,
                  task: StaticTask, extend: bool) -> None:
        """Track consecutive RAW chains for the serialization rule."""

        if not extend:
            return
        run = self._runs.get(datum.uid)
        if run and run[-1] is producer:
            run.append(task)
        else:
            run = self._runs[datum.uid] = [producer, task]
        best = self._best_runs.setdefault(datum.uid, run)
        if len(run) > len(best):
            self._best_runs[datum.uid] = list(run)

    def _flush_serialization(self) -> None:
        total = len(self._epoch_tasks)
        if total == 0:
            self._best_runs.clear()
            return
        for uid, run in self._best_runs.items():
            chained = [t for t in run if t.certain]
            if len(chained) < _SERIAL_MIN_CHAIN:
                continue
            if len(chained) < math.ceil(_SERIAL_DOMINANCE * total):
                continue
            first = chained[0]
            label = next(
                (d.label for d, _t in self._renames if d.uid == uid), None
            )
            self.findings.append(Finding(
                first.file, first.line, 1, "flow-serialization",
                f"{len(chained)} of {total} tasks in this synchronisation "
                "epoch form a single read-after-write chain through one "
                f"datum{' (' + label + ')' if label else ''}; the epoch is "
                "effectively serial — privatise the accumulator or "
                "restructure into a reduction",
                task=first.name,
            ))
        self._best_runs.clear()

    def _flush_renaming_pressure(self) -> None:
        groups: dict[tuple, list[tuple[Datum, StaticTask]]] = {}
        for datum, task in self._renames:
            if not task.certain or not task.loops:
                continue
            groups.setdefault((datum.uid, task.loops[-1]), []).append(
                (datum, task)
            )
        for (uid, loop_line), events in groups.items():
            if len(events) < _RENAME_PRESSURE_MIN:
                continue
            datum, first = events[0]
            self.findings.append(Finding(
                first.file, first.line, 1, "flow-renaming-pressure",
                f"{len(events)} renamed versions of '{datum.label}' are "
                f"created by the loop at line {loop_line}; each rename "
                "allocates a private buffer (paper section III) — bound "
                "the live versions with a barrier or restructure the "
                "update",
                task=first.name,
            ))

    # -- driver-level data access ---------------------------------------

    def _driver_access(self, datum: Datum, node, *, writes: bool,
                       what: str) -> None:
        if self.runtime_depth == 0 or self.cond_depth > 0 \
                or self.summarized_depth > 0:
            return
        for d in datum.descendants():
            for chain in d.chains.values():
                p = chain.current.producer
                if p is not None and not p.finished and p.certain:
                    self._report(
                        "flow-missing-barrier", node,
                        f"driver code {what} '{d.label}' while task "
                        f"'{p.name}' (line {p.line}) may still be writing "
                        "it; insert barrier() or wait_on(...) first",
                        dedup_key=(d.uid, "w"),
                    )
                    return
                if writes:
                    for r in chain.current.pending_readers():
                        if r.certain:
                            self._report(
                                "flow-missing-barrier", node,
                                f"driver code {what} '{d.label}' while "
                                f"task '{r.name}' (line {r.line}) may "
                                "still be reading it; insert barrier() "
                                "or wait_on(...) first",
                                dedup_key=(d.uid, "r"),
                            )
                            return

    def _read_datums(self, values, node, what: str = "reads") -> None:
        for v in values:
            if isinstance(v, Datum):
                self._driver_access(v, node, writes=False, what=what)

    # -- submission -----------------------------------------------------

    def _submit(self, taskdef: _TaskDef, args: list, kwargs: dict,
                node) -> None:
        effect = taskdef.effect
        if effect is None:
            return
        if len(self.graph.tasks) >= self.opt.max_tasks:
            self.graph.truncated = True
            raise _OutOfBudget

        arg_map: dict = {}
        params = list(effect.param_names)
        for name, value in zip(params, args):
            arg_map[name] = value
        for name, value in kwargs.items():
            if name in params:
                arg_map[name] = value
        defaults = taskdef.node.args.defaults
        if defaults:
            tail = params[len(params) - len(defaults):]
            for name, dnode in zip(tail, defaults):
                if name not in arg_map:
                    arg_map[name] = self._eval(dnode, taskdef.module.env)

        shapes = {
            n: v.shape for n, v in arg_map.items()
            if isinstance(v, Datum) and isinstance(v.shape, tuple)
            and all(isinstance(s, int) for s in v.shape)
        }
        task = StaticTask(
            task_id=len(self.graph.tasks) + 1,
            name=effect.name,
            file=self.module.path,
            line=self._line(node),
            high_priority=effect.high_priority,
            conditional=self.cond_depth > 0,
            summarized=self.summarized_depth > 0,
            epoch=self.epoch,
            loops=tuple(self.loop_stack),
        )
        self.graph.tasks.append(task)
        self._task_by_id[task.task_id] = task
        self.graph.stream.append(["task", task.task_id])
        self._live.append(task)
        self._epoch_tasks.append(task)
        if task.certain:
            self._certain_since_sync += 1
        else:
            self._maybe_since_sync += 1

        for access in effect.footprint(arg_map, shapes):
            value = arg_map.get(access.param, UNKNOWN)
            if not isinstance(value, Datum) or _is_scalarish(value):
                continue
            self._track(task, value, access.direction, access.region, node)

    # -- statement execution --------------------------------------------

    def _exec_block(self, stmts, env: _Env) -> None:
        for stmt in stmts:
            self._exec(stmt, env)

    def _exec(self, node, env: _Env) -> None:
        self._tick()
        method = getattr(self, "_exec_" + type(node).__name__, None)
        if method is not None:
            method(node, env)

    def _exec_Expr(self, node, env):
        self._eval(node.value, env)

    def _exec_Assign(self, node, env):
        value = self._eval(node.value, env)
        for target in node.targets:
            self._assign(target, value, env)

    def _exec_AnnAssign(self, node, env):
        if node.value is not None:
            self._assign(node.target, self._eval(node.value, env), env)

    def _exec_AugAssign(self, node, env):
        target = node.target
        if isinstance(target, ast.Name):
            try:
                old = env.lookup(target.id)
            except KeyError:
                old = UNKNOWN
            value = self._binop(old, self._eval(node.value, env),
                                node.op, node)
            env.assign(target.id, value)
            return
        if isinstance(target, ast.Subscript):
            obj = self._eval(target.value, env)
            self._eval(node.value, env)
            if isinstance(obj, Datum) and obj.kind == "array":
                self._driver_access(obj, node, writes=True,
                                    what="updates an element of")
            return
        self._eval(node.value, env)

    def _exec_Return(self, node, env):
        value = None if node.value is None else self._eval(node.value, env)
        raise _Return(value)

    def _exec_Pass(self, node, env):
        pass

    def _exec_Break(self, node, env):
        raise _Break

    def _exec_Continue(self, node, env):
        raise _Continue

    def _exec_Delete(self, node, env):
        for target in node.targets:
            if isinstance(target, ast.Name):
                env.vars.pop(target.id, None)

    def _exec_Assert(self, node, env):
        self._eval(node.test, env)
        if node.msg is not None:
            self._eval(node.msg, env)

    def _exec_Raise(self, node, env):
        if node.exc is not None:
            self._eval(node.exc, env)

    def _exec_Global(self, node, env):
        pass

    _exec_Nonlocal = _exec_Global

    def _exec_Import(self, node, env):
        for alias in node.names:
            value = self._load_module(alias.name)
            if alias.asname:
                env.assign(alias.asname, value)
            else:
                env.assign(alias.name.split(".", 1)[0],
                           self._load_module(alias.name.split(".", 1)[0]))

    def _exec_ImportFrom(self, node, env):
        base = self._resolve_import_base(node)
        loaded = None
        for alias in node.names:
            bind = alias.asname or alias.name
            if alias.name == "*":
                continue
            if base.split(".", 1)[0] == "repro" \
                    and alias.name in _API_INTRINSICS:
                env.assign(bind, _Intrinsic(alias.name))
                continue
            if loaded is None:
                loaded = self._load_module(base) if base else UNKNOWN
            if isinstance(loaded, _Module):
                try:
                    env.assign(bind, loaded.env.lookup(alias.name))
                    continue
                except KeyError:
                    pass
            if isinstance(loaded, _Intrinsic):
                env.assign(bind, loaded.attr(alias.name))
            else:
                env.assign(bind, UNKNOWN)

    def _exec_FunctionDef(self, node, env):
        taskdef = self._make_taskdef(node, env)
        env.assign(node.name, taskdef if taskdef is not None
                   else _Func(node, self.module, env))

    _exec_AsyncFunctionDef = _exec_FunctionDef

    def _exec_ClassDef(self, node, env):
        env.assign(node.name, UNKNOWN)

    def _make_taskdef(self, node, env) -> Optional[_TaskDef]:
        for dec in node.decorator_list:
            parsed = _decorator_pragma(dec)
            if parsed is None:
                continue
            text, _names = parsed
            constants = self._decorator_constants(dec, env)
            try:
                pragma = parse_pragma(text)
            except PragmaError:
                return _TaskDef(None, node, self.module)
            params = [a.arg for a in node.args.args]
            effect = TaskEffect.from_pragma(node.name, pragma, params,
                                            constants)
            return _TaskDef(effect, node, self.module)
        return None

    def _decorator_constants(self, dec: ast.Call, env) -> dict:
        for kw in dec.keywords:
            if kw.arg != "constants":
                continue
            if isinstance(kw.value, ast.Dict):
                out = {}
                for k, v in zip(kw.value.keys, kw.value.values):
                    if isinstance(k, ast.Constant) and isinstance(k.value, str):
                        value = self._eval(v, env)
                        ival = _concrete_int(value)
                        if ival is not None:
                            out[k.value] = ival
                return out
            value = self._eval(kw.value, env)
            return value if isinstance(value, dict) else {}
        return {}

    def _exec_If(self, node, env):
        test = self._eval_condition(node.test, env)
        if test is True:
            self._exec_block(node.body, env)
            return
        if test is False:
            self._exec_block(node.orelse, env)
            return
        self._exec_both_branches(node.body, node.orelse, env)

    def _exec_both_branches(self, body, orelse, env):
        names = self._assigned_names(body) | self._assigned_names(orelse)
        before = {}
        for name in names:
            try:
                before[name] = env.lookup(name)
            except KeyError:
                pass
        self.cond_depth += 1
        try:
            self._exec_block(body, env)
            self._exec_block(orelse, env)
        finally:
            self.cond_depth -= 1
        for name in names:
            try:
                after = env.lookup(name)
            except KeyError:
                continue
            prior = before.get(name, UNKNOWN)
            if after is prior:
                continue
            if isinstance(after, (int, float, str, bool)) \
                    and type(after) is type(prior) and after == prior:
                continue
            env.assign(name, UNKNOWN)

    def _exec_While(self, node, env):
        iterations = 0
        while iterations < self.opt.max_unroll:
            test = self._eval_condition(node.test, env)
            if test is False:
                self._exec_block(node.orelse, env)
                return
            if test is not True:
                break
            iterations += 1
            try:
                self._exec_block(node.body, env)
            except _Break:
                return
            except _Continue:
                continue
        # unknown condition (or unroll budget): one summarized pass
        self._exec_summarized_body(node.body, env)
        self._invalidate_assigned(node.body, env)

    def _exec_For(self, node, env):
        iterable = self._eval(node.iter, env)
        items = self._concrete_items(iterable)
        if items is not None and len(items) <= self.opt.max_unroll:
            line = getattr(node, "lineno", 0) - self.module.line_offset
            self.loop_stack.append(line)
            try:
                for item in items:
                    self._assign(node.target, item, env)
                    try:
                        self._exec_block(node.body, env)
                    except _Break:
                        break
                    except _Continue:
                        continue
                else:
                    self._exec_block(node.orelse, env)
            finally:
                self.loop_stack.pop()
            return
        # summarized: induction variable becomes an interval (or unknown)
        self.graph.truncated = self.graph.truncated or items is not None
        summary = UNKNOWN
        if isinstance(iterable, _RangeValue):
            hull = iterable.hull()
            if hull is None:
                self._exec_block(node.orelse, env)
                return      # provably empty range
            summary = hull
        elif items:
            ints = [v for v in items if _concrete_int(v) is not None]
            if len(ints) == len(items) and ints:
                summary = Interval(min(ints), max(ints))
        line = getattr(node, "lineno", 0) - self.module.line_offset
        self.loop_stack.append(line)
        try:
            self._assign(node.target, summary, env)
            self._exec_summarized_body(node.body, env)
        finally:
            self.loop_stack.pop()
        self._invalidate_assigned(node.body, env, keep=node.target)
        self._assign(node.target, summary, env)

    _exec_AsyncFor = _exec_For

    def _exec_summarized_body(self, body, env) -> None:
        self.summarized_depth += 1
        self.cond_depth += 1
        try:
            self._exec_block(body, env)
        except (_Break, _Continue):
            pass
        finally:
            self.cond_depth -= 1
            self.summarized_depth -= 1

    def _assigned_names(self, stmts) -> set[str]:
        names: set[str] = set()
        for stmt in stmts:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) \
                        and isinstance(sub.ctx, ast.Store):
                    names.add(sub.id)
                elif isinstance(sub, ast.NamedExpr) \
                        and isinstance(sub.target, ast.Name):
                    names.add(sub.target.id)
        return names

    def _invalidate_assigned(self, body, env, keep=None) -> None:
        kept = set()
        if keep is not None:
            kept = {n.id for n in ast.walk(keep)
                    if isinstance(n, ast.Name)}
        for name in self._assigned_names(body) - kept:
            env.assign(name, UNKNOWN)

    def _exec_With(self, node, env):
        handles = []
        for item in node.items:
            ctx = self._eval(item.context_expr, env)
            if item.optional_vars is not None:
                self._assign(item.optional_vars, ctx, env)
            if isinstance(ctx, _RuntimeHandle):
                handles.append(ctx)
        for _h in handles:
            self._sync()
            self.runtime_depth += 1
        try:
            self._exec_block(node.body, env)
        finally:
            for _h in handles:
                self.runtime_depth -= 1
                self._sync()    # __exit__ -> shutdown() -> barrier()

    _exec_AsyncWith = _exec_With

    def _exec_Try(self, node, env):
        try:
            self._exec_block(node.body, env)
        finally:
            self._exec_block(node.orelse, env)
            self._exec_block(node.finalbody, env)

    _exec_TryStar = _exec_Try

    def _exec_Match(self, node, env):
        self._eval(node.subject, env)
        bodies = [case.body for case in node.cases]
        for body in bodies:
            self.cond_depth += 1
            try:
                self._exec_block(body, env)
            finally:
                self.cond_depth -= 1

    # -- assignment targets ---------------------------------------------

    def _assign(self, target, value, env: _Env) -> None:
        if isinstance(target, ast.Name):
            if isinstance(value, Datum) and value.label.startswith("<"):
                value.label = target.id
            env.assign(target.id, value)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elements = None
            if isinstance(value, tuple):
                elements = list(value)
            elif isinstance(value, list):
                elements = value
            elif isinstance(value, Datum) and value.kind == "list" \
                    and not value.tainted:
                elements = [value.children[k]
                            for k in sorted(value.children)]
            if elements is not None and len(elements) == len(target.elts) \
                    and not any(isinstance(t, ast.Starred)
                                for t in target.elts):
                for t, v in zip(target.elts, elements):
                    self._assign(t, v, env)
            else:
                for t in target.elts:
                    inner = t.value if isinstance(t, ast.Starred) else t
                    self._assign(inner, UNKNOWN, env)
            return
        if isinstance(target, ast.Subscript):
            obj = self._eval(target.value, env)
            idx = self._eval_index(target.slice, env)
            self._store_item(obj, idx, value, target)
            return
        if isinstance(target, ast.Attribute):
            obj = self._eval(target.value, env)
            if isinstance(obj, Datum) and obj.kind == "array" \
                    and target.attr not in _METADATA_ATTRS:
                self._driver_access(obj, target, writes=True,
                                    what="writes an attribute of")
            return
        if isinstance(target, ast.Starred):
            self._assign(target.value, UNKNOWN, env)

    # -- container / array element access -------------------------------

    def _eval_index(self, node, env):
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part, env)
            return UNKNOWN
        if isinstance(node, ast.Tuple):
            return tuple(self._eval_index(e, env) for e in node.elts)
        return self._eval(node, env)

    def _container_path(self, obj: Datum, key) -> Optional[tuple[Datum, object]]:
        """Walk nested container keys; returns (leaf container, leaf key)."""

        keys = key if isinstance(key, tuple) else (key,)
        cur = obj
        for k in keys[:-1]:
            child = cur.children.get(k)
            if not isinstance(child, Datum) or not child.is_container:
                child = self._new_datum(
                    f"{cur.label}[{k}]",
                    kind="row" if cur.kind in ("hyper", "row") else "list",
                )
                child.attrs.update(obj.attrs)
                cur.children[k] = child
            cur = child
        return cur, keys[-1]

    def _load_item(self, obj, idx, node):
        if isinstance(obj, Datum) and obj.is_container:
            key = _concrete_key(idx)
            if key is None:
                return UNKNOWN
            leaf, k = self._container_path(obj, key)
            value = leaf.children.get(k)
            if value is not None:
                return value
            if obj.tainted or leaf.tainted:
                return UNKNOWN
            if obj.kind in ("hyper", "row") or leaf.kind in ("hyper", "row"):
                m = obj.attrs.get("m")
                shape = (m, m) if isinstance(m, int) else None
                block = self._new_datum(
                    f"{obj.label}[{','.join(str(p) for p in (key if isinstance(key, tuple) else (key,)))}]",
                    shape=shape, maybe_absent=True,
                )
                leaf.children[k] = block
                return block
            return UNKNOWN
        if isinstance(obj, Datum) and obj.kind == "array":
            self._driver_access(obj, node, writes=False,
                                what="reads an element of")
            return UNKNOWN
        if isinstance(obj, dict):
            key = _concrete_key(idx)
            if key is not None and key in obj:
                return obj[key]
            return UNKNOWN
        if isinstance(obj, (tuple, list)):
            i = _concrete_int(idx)
            if i is not None and -len(obj) <= i < len(obj):
                return obj[i]
            return UNKNOWN
        return UNKNOWN

    def _store_item(self, obj, idx, value, node) -> None:
        if isinstance(obj, Datum) and obj.is_container:
            key = _concrete_key(idx)
            if key is None:
                obj.tainted = True
                return
            leaf, k = self._container_path(obj, key)
            if isinstance(value, Datum):
                if value.label.startswith("<"):
                    parts = key if isinstance(key, tuple) else (key,)
                    value.label = (
                        f"{obj.label}[{','.join(str(p) for p in parts)}]"
                    )
                if self.cond_depth > 0:
                    value.maybe_absent = True
            leaf.children[k] = value
            return
        if isinstance(obj, Datum) and obj.kind == "array":
            self._driver_access(obj, node, writes=True,
                                what="writes an element of")
            return
        if isinstance(obj, dict):
            key = _concrete_key(idx)
            if key is not None:
                obj[key] = value

    # -- expression evaluation ------------------------------------------

    def _eval(self, node, env: _Env):
        self._tick()
        method = getattr(self, "_eval_" + type(node).__name__, None)
        if method is None:
            return UNKNOWN
        return method(node, env)

    def _eval_Constant(self, node, env):
        return node.value

    def _eval_Name(self, node, env):
        try:
            return env.lookup(node.id)
        except KeyError:
            pass
        if node.id in _READER_BUILTINS or node.id in _PASSTHROUGH_BUILTINS \
                or node.id in ("range", "len", "enumerate", "zip", "list",
                               "tuple", "dict", "set", "reversed"):
            return _Intrinsic("builtins." + node.id)
        return UNKNOWN

    def _eval_Tuple(self, node, env):
        if any(isinstance(e, ast.Starred) for e in node.elts):
            return UNKNOWN
        return tuple(self._eval(e, env) for e in node.elts)

    def _eval_List(self, node, env):
        datum = self._new_datum("<list>", kind="list")
        for i, e in enumerate(node.elts):
            if isinstance(e, ast.Starred):
                datum.tainted = True
                self._eval(e.value, env)
                continue
            datum.children[i] = self._eval(e, env)
        return datum

    def _eval_Dict(self, node, env):
        out: dict = {}
        for k, v in zip(node.keys, node.values):
            value = self._eval(v, env)
            if k is None:
                continue
            key = _concrete_key(self._eval(k, env))
            if key is not None:
                out[key] = value
        return out

    def _eval_Set(self, node, env):
        for e in node.elts:
            self._eval(e, env)
        return UNKNOWN

    def _eval_Starred(self, node, env):
        return self._eval(node.value, env)

    def _eval_JoinedStr(self, node, env):
        for v in node.values:
            self._eval(v, env)
        return UNKNOWN

    def _eval_FormattedValue(self, node, env):
        value = self._eval(node.value, env)
        if isinstance(value, Datum) and value.kind == "array":
            self._driver_access(value, node, writes=False,
                                what="formats the contents of")
        return UNKNOWN

    def _eval_NamedExpr(self, node, env):
        value = self._eval(node.value, env)
        self._assign(node.target, value, env)
        return value

    def _eval_Lambda(self, node, env):
        return _Func(node, self.module, env)

    def _eval_IfExp(self, node, env):
        test = self._eval_condition(node.test, env)
        if test is True:
            return self._eval(node.body, env)
        if test is False:
            return self._eval(node.orelse, env)
        self.cond_depth += 1
        try:
            self._eval(node.body, env)
            self._eval(node.orelse, env)
        finally:
            self.cond_depth -= 1
        return UNKNOWN

    def _eval_Subscript(self, node, env):
        obj = self._eval(node.value, env)
        idx = self._eval_index(node.slice, env)
        return self._load_item(obj, idx, node)

    def _eval_Attribute(self, node, env):
        obj = self._eval(node.value, env)
        attr = node.attr
        if isinstance(obj, _Intrinsic):
            return obj.attr(attr)
        if isinstance(obj, _Module):
            try:
                return obj.env.lookup(attr)
            except KeyError:
                return UNKNOWN
        if isinstance(obj, _RuntimeHandle):
            if attr == "barrier":
                return _BoundMethod(obj, "barrier")
            return _Intrinsic("runtime." + attr)
        if isinstance(obj, Datum):
            if attr in obj.attrs:
                return obj.attrs[attr]
            if attr == "shape" and obj.shape is not None:
                return tuple(obj.shape)
            if attr in _METADATA_ATTRS:
                return UNKNOWN
            return _BoundMethod(obj, attr)
        return UNKNOWN

    def _eval_UnaryOp(self, node, env):
        value = self._eval(node.operand, env)
        if isinstance(node.op, ast.Not):
            cond = self._truthiness(value)
            return (not cond) if isinstance(cond, bool) else UNKNOWN
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, (int, float)):
            try:
                if isinstance(node.op, ast.USub):
                    return -value
                if isinstance(node.op, ast.UAdd):
                    return +value
                if isinstance(node.op, ast.Invert) \
                        and isinstance(value, int):
                    return ~value
            except Exception:
                return UNKNOWN
        if isinstance(value, Interval) and isinstance(node.op, ast.USub):
            return -value
        if isinstance(value, Datum):
            self._read_datums([value], node)
        return UNKNOWN

    def _eval_BinOp(self, node, env):
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        return self._binop(left, right, node.op, node)

    def _binop(self, left, right, op, node):
        for v in (left, right):
            if isinstance(v, Datum) and v.kind == "array":
                self._driver_access(v, node, writes=False,
                                    what="computes with")
        if isinstance(left, bool):
            left = int(left)
        if isinstance(right, bool):
            right = int(right)
        numeric = (int, float)
        if isinstance(left, numeric) and isinstance(right, numeric):
            try:
                return {
                    ast.Add: lambda: left + right,
                    ast.Sub: lambda: left - right,
                    ast.Mult: lambda: left * right,
                    ast.Div: lambda: left / right,
                    ast.FloorDiv: lambda: left // right,
                    ast.Mod: lambda: left % right,
                    ast.Pow: lambda: left ** right,
                    ast.LShift: lambda: left << right,
                    ast.RShift: lambda: left >> right,
                    ast.BitOr: lambda: left | right,
                    ast.BitAnd: lambda: left & right,
                    ast.BitXor: lambda: left ^ right,
                }[type(op)]()
            except Exception:
                return UNKNOWN
        if isinstance(left, str) and isinstance(right, str) \
                and isinstance(op, ast.Add):
            return left + right
        if isinstance(left, tuple) and isinstance(right, tuple) \
                and isinstance(op, ast.Add):
            return left + right
        ab = {Interval, int}
        if type(left) in ab and type(right) in ab \
                and (isinstance(left, Interval)
                     or isinstance(right, Interval)):
            li, ri = Interval.of(left), Interval.of(right)
            try:
                return {
                    ast.Add: lambda: li + ri,
                    ast.Sub: lambda: li - ri,
                    ast.Mult: lambda: li * ri,
                    ast.FloorDiv: lambda: li // ri,
                    ast.Mod: lambda: li % ri,
                }[type(op)]()
            except (KeyError, ValueError):
                return UNKNOWN
        return UNKNOWN

    def _eval_BoolOp(self, node, env):
        results = [self._truthiness(self._eval(v, env))
                   for v in node.values]
        if all(isinstance(r, bool) for r in results):
            if isinstance(node.op, ast.And):
                return all(results)
            return any(results)
        return UNKNOWN

    def _eval_Compare(self, node, env):
        values = [self._eval(node.left, env)]
        values.extend(self._eval(c, env) for c in node.comparators)
        for v in values:
            if isinstance(v, Datum) and v.kind == "array" \
                    and not any(isinstance(op, (ast.Is, ast.IsNot))
                                for op in node.ops):
                self._driver_access(v, node, writes=False,
                                    what="compares the contents of")
        result: object = True
        for (left, right), op in zip(zip(values, values[1:]), node.ops):
            step = self._compare_one(left, right, op)
            if step is False:
                return False
            if not isinstance(step, bool):
                result = UNKNOWN
        return result

    def _compare_one(self, left, right, op):
        if isinstance(op, (ast.Is, ast.IsNot)):
            negate = isinstance(op, ast.IsNot)
            if right is None or left is None:
                other = left if right is None else right
                if other is None:
                    same = True
                elif isinstance(other, Datum):
                    if other.maybe_absent:
                        return UNKNOWN
                    same = False
                elif isinstance(other, (_RuntimeHandle, _Intrinsic,
                                        _Func, _TaskDef, _Module)):
                    same = False
                elif _is_scalarish(other):
                    same = other is None
                else:
                    return UNKNOWN
                return (not same) if negate else same
            return UNKNOWN
        plain = (int, float, str, bool)
        if isinstance(left, plain) and isinstance(right, plain):
            try:
                return {
                    ast.Eq: lambda: left == right,
                    ast.NotEq: lambda: left != right,
                    ast.Lt: lambda: left < right,
                    ast.LtE: lambda: left <= right,
                    ast.Gt: lambda: left > right,
                    ast.GtE: lambda: left >= right,
                }[type(op)]()
            except (KeyError, TypeError):
                return UNKNOWN
        iv = (int, Interval)
        if isinstance(left, iv) and isinstance(right, iv) \
                and not isinstance(left, bool) \
                and not isinstance(right, bool):
            li, ri = Interval.of(left), Interval.of(right)
            if isinstance(op, ast.Lt) and li.must_precede(ri):
                return True
            if isinstance(op, ast.Gt) and ri.must_precede(li):
                return True
            if isinstance(op, (ast.Eq,)) and li.must_disjoint(ri):
                return False
        return UNKNOWN

    def _truthiness(self, value):
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float, str)):
            return bool(value)
        if value is None:
            return False
        if isinstance(value, tuple):
            return bool(value)
        return UNKNOWN

    def _eval_condition(self, node, env):
        value = self._eval(node, env)
        return self._truthiness(value)

    # -- comprehensions --------------------------------------------------

    def _eval_ListComp(self, node, env):
        items = self._comp_items(node, env)
        if items is None:
            return UNKNOWN
        datum = self._new_datum("<list>", kind="list")
        for i, v in enumerate(items):
            datum.children[i] = v
        return datum

    def _eval_SetComp(self, node, env):
        self._comp_items(node, env)
        return UNKNOWN

    _eval_GeneratorExp = _eval_ListComp

    def _eval_DictComp(self, node, env):
        scope = _Env(parent=env)
        out = self._comp_iterate(node.generators, 0, scope, None)
        result: dict = {}
        if out is None:
            self.cond_depth += 1
            try:
                self._eval(node.key, scope)
                self._eval(node.value, scope)
            finally:
                self.cond_depth -= 1
            return UNKNOWN
        for _ in out:
            key = _concrete_key(self._eval(node.key, scope))
            value = self._eval(node.value, scope)
            if key is not None:
                result[key] = value
        return result

    def _comp_items(self, node, env) -> Optional[list]:
        scope = _Env(parent=env)
        bindings = self._comp_iterate(node.generators, 0, scope, None)
        if bindings is None:
            self.cond_depth += 1
            try:
                self._eval(node.elt, scope)
            finally:
                self.cond_depth -= 1
            return None
        return [self._eval(node.elt, scope) for _ in bindings]

    def _comp_iterate(self, generators, index, scope, _unused):
        """Yield one sentinel per concrete binding combination (with the
        bindings applied in *scope*), or None when not concretely
        iterable."""

        if index >= len(generators):
            return [object()]
        gen = generators[index]
        iterable = self._eval(gen.iter, scope)
        items = self._concrete_items(iterable)
        if items is None or len(items) > self.opt.max_unroll:
            self._assign(gen.target, UNKNOWN, scope)
            for cond in gen.ifs:
                self._eval(cond, scope)
            return None
        out = []
        for item in items:
            self._assign(gen.target, item, scope)
            keep = True
            for cond in gen.ifs:
                test = self._eval_condition(cond, scope)
                if test is False:
                    keep = False
                    break
                if test is not True:
                    return None
            if not keep:
                continue
            inner = self._comp_iterate(generators, index + 1, scope, None)
            if inner is None:
                return None
            out.extend(inner)
        return out

    def _concrete_items(self, iterable) -> Optional[list]:
        if isinstance(iterable, _RangeValue):
            conc = iterable.concrete()
            if conc is None:
                return None
            if len(conc) > max(self.opt.max_unroll * 16, 4096):
                return None
            return list(conc)
        if isinstance(iterable, tuple):
            return list(iterable)
        if isinstance(iterable, list):
            return iterable
        if isinstance(iterable, dict):
            return list(iterable.keys())
        if isinstance(iterable, Datum) and iterable.kind == "list" \
                and not iterable.tainted:
            keys = sorted(k for k in iterable.children
                          if isinstance(k, int))
            if len(keys) == len(iterable.children):
                return [iterable.children[k] for k in keys]
        return None

    # -- calls -----------------------------------------------------------

    def _eval_Call(self, node, env):
        func = self._eval(node.func, env)
        args = []
        for a in node.args:
            if isinstance(a, ast.Starred):
                spread = self._eval(a.value, env)
                if isinstance(spread, tuple):
                    args.extend(spread)
                else:
                    items = self._concrete_items(spread)
                    if items is None:
                        args.append(UNKNOWN)
                    else:
                        args.extend(items)
            else:
                args.append(self._eval(a, env))
        kwargs = {}
        for kw in node.keywords:
            value = self._eval(kw.value, env)
            if kw.arg is not None:
                kwargs[kw.arg] = value

        if isinstance(func, _TaskDef):
            if self.runtime_depth > 0:
                self._submit(func, args, kwargs, node)
            return None
        if isinstance(func, _Func):
            return self._call_func(func, args, kwargs, node)
        if isinstance(func, _BoundMethod):
            return self._call_method(func, args, kwargs, node)
        if isinstance(func, _Intrinsic):
            return self._call_intrinsic(func.name, args, kwargs, node)
        return UNKNOWN

    def _call_func(self, fn: _Func, args, kwargs, node):
        if self._depth >= self.opt.max_depth:
            return UNKNOWN
        fnode = fn.node
        frame = _Env(parent=fn.env)
        spec = fnode.args
        params = [a.arg for a in spec.args]
        for name, value in zip(params, args):
            frame.assign(name, value)
        if spec.vararg is not None:
            frame.assign(spec.vararg.arg, tuple(args[len(params):]))
        for name, value in kwargs.items():
            if name in params or any(a.arg == name for a in spec.kwonlyargs):
                frame.assign(name, value)
        defaults = spec.defaults
        if defaults:
            tail = params[len(params) - len(defaults):]
            for name, dnode in zip(tail, defaults):
                if name not in frame.vars:
                    frame.assign(name, self._eval(dnode, fn.env))
        for a, d in zip(spec.kwonlyargs, spec.kw_defaults):
            if a.arg not in frame.vars and d is not None:
                frame.assign(a.arg, self._eval(d, fn.env))
        for name in params:
            frame.vars.setdefault(name, UNKNOWN)
        if spec.kwarg is not None:
            frame.assign(spec.kwarg.arg, dict(kwargs))

        self._depth += 1
        cross = fn.module is not self.module
        if cross:
            self._module_stack.append(fn.module)
        try:
            if isinstance(fnode, ast.Lambda):
                return self._eval(fnode.body, frame)
            self._exec_block(fnode.body, frame)
            return None
        except _Return as ret:
            return ret.value
        finally:
            if cross:
                self._module_stack.pop()
            self._depth -= 1

    def _call_method(self, bound: _BoundMethod, args, kwargs, node):
        obj, name = bound.obj, bound.method
        if isinstance(obj, _RuntimeHandle):
            if name == "barrier":
                self._sync(node, explicit=True)
            return None
        if not isinstance(obj, Datum):
            return UNKNOWN
        self._read_datums(args, node)
        if obj.kind in ("list", "dict"):
            if name == "append":
                keys = [k for k in obj.children if isinstance(k, int)]
                obj.children[(max(keys) + 1) if keys else 0] = \
                    args[0] if args else UNKNOWN
            elif name in _LIST_METHODS or name in ("get", "keys",
                                                   "values", "items",
                                                   "setdefault", "update"):
                if name not in ("index", "count", "get", "keys",
                                "values", "items"):
                    obj.tainted = True
            return UNKNOWN
        if name in _PURE_METHODS:
            self._driver_access(obj, node, writes=False,
                                what=f"calls .{name}() on")
            if obj.kind == "array" and name in ("copy", "astype"):
                return self._new_datum(f"<{name} of {obj.label}>",
                                       shape=obj.shape)
            if obj.kind == "array" and name in ("ravel", "flatten",
                                                "reshape", "transpose",
                                                "view", "conj"):
                return self._new_datum(f"<{name} of {obj.label}>")
            return UNKNOWN
        if name in _MUTATOR_METHODS:
            self._driver_access(obj, node, writes=True,
                                what=f"calls mutating .{name}() on")
            return UNKNOWN
        # unknown method: may read and write the object
        self._driver_access(obj, node, writes=True,
                            what=f"calls .{name}() on")
        return UNKNOWN

    def _shape_from(self, value) -> Optional[tuple]:
        i = _concrete_int(value)
        if i is not None:
            return (i,)
        if isinstance(value, tuple):
            dims = tuple(_concrete_int(v) for v in value)
            if all(d is not None for d in dims):
                return dims
        return None

    def _call_intrinsic(self, name, args, kwargs, node):
        last = name.rsplit(".", 1)[-1]
        top = name.split(".", 1)[0]

        if name in ("SmpssRuntime", "RecordingRuntime"):
            return _RuntimeHandle()
        if name in ("record_program", "simulate_program"):
            return self._run_recorded(args, kwargs, node)
        if name == "barrier" or last == "__css_barrier__":
            if self.runtime_depth > 0:
                self._sync(node, explicit=True)
            return None
        if name == "wait_on" or last == "__css_wait_on__":
            if args:
                self._wait_on(args[0], node)
            return None
        if name == "current_runtime" or last == "__css_runtime__":
            return _RuntimeHandle() if self.runtime_depth > 0 else None
        if name == "SharedArena":
            return _Intrinsic("arena")
        if name == "arena_array" or (top == "arena"
                                     and last in ("zeros", "ones", "empty",
                                                  "array", "full")):
            self._read_datums(args, node)
            shape = self._shape_from(args[0]) if args else None
            if shape is None and args and isinstance(args[0], Datum):
                shape = args[0].shape
            return self._new_datum("<arena array>", shape=shape)
        if name == "HyperMatrix":
            datum = self._new_datum("<hypermatrix>", kind="hyper")
            if args:
                n = _concrete_int(args[0])
                if n is not None:
                    datum.attrs["n"] = n
            if len(args) > 1:
                m = _concrete_int(args[1])
                if m is not None:
                    datum.attrs["m"] = m
            return datum
        if name == "HyperMatrix.random_spd":
            datum = self._new_datum("<hypermatrix>", kind="hyper")
            n = _concrete_int(args[0]) if args else None
            m = _concrete_int(args[1]) if len(args) > 1 else None
            if n is not None:
                datum.attrs["n"] = n
            if m is not None:
                datum.attrs["m"] = m
            return datum
        if name == "Representant":
            self._read_datums(args, node)
            return self._new_datum("<representant>", kind="object",
                                   renamable=False)
        if name == "RepresentantTable":
            return _Intrinsic("reptable")

        if top == "numpy":
            return self._call_numpy(name, last, args, kwargs, node)
        if top == "math":
            fn = getattr(math, last, None)
            conc = [a for a in args if isinstance(a, (int, float))
                    and not isinstance(a, bool)]
            if fn is not None and len(conc) == len(args):
                try:
                    return fn(*conc)
                except Exception:
                    return UNKNOWN
            return UNKNOWN
        if top == "builtins":
            return self._call_builtin(last, args, kwargs, node)
        return UNKNOWN

    def _run_recorded(self, args, kwargs, node):
        """Model record_program / simulate_program: a fresh recording
        runtime wrapping one driver call.  Tasks either ran eagerly by
        the time it returns or were never executed at all, so data is
        consistent afterwards: an implicit sync on both sides."""

        if not args:
            return _Intrinsic("recording")
        fn, rest = args[0], list(args[1:])
        self._sync()
        self.runtime_depth += 1
        try:
            if isinstance(fn, _Func):
                self._call_func(fn, rest, {}, node)
            elif isinstance(fn, _TaskDef):
                self._submit(fn, rest, {}, node)
        finally:
            self.runtime_depth -= 1
            self._sync()
        return _Intrinsic("recording")

    def _call_numpy(self, name, last, args, kwargs, node):
        if last in _NP_CONSTRUCTORS:
            self._read_datums(args, node)
            shape = self._shape_from(args[0]) if args else None
            if shape is None and args and isinstance(args[0], Datum):
                shape = args[0].shape
            return self._new_datum("<ndarray>", shape=shape)
        if last == "default_rng":
            return _Intrinsic("numpy.rng")
        if ".rng." in name + "." and last in _RNG_METHODS \
                or last in _RNG_METHODS:
            shape = self._shape_from(args[0]) if args else None
            if shape is None:
                shape = self._shape_from(kwargs.get("size"))
            return self._new_datum("<ndarray>", shape=shape)
        # every other numpy function reads its array arguments
        self._read_datums(list(args) + list(kwargs.values()), node)
        return UNKNOWN

    def _call_builtin(self, last, args, kwargs, node):
        arg0 = args[0] if args else UNKNOWN
        if last == "range":
            vals = [a if isinstance(a, (int, Interval))
                    and not isinstance(a, bool) else UNKNOWN for a in args]
            while len(vals) < 3:
                vals.append(UNKNOWN)
            if len(args) == 1:
                return _RangeValue(0, vals[0], 1)
            step = vals[2] if len(args) > 2 else 1
            return _RangeValue(vals[0], vals[1], step)
        if last == "len":
            if isinstance(arg0, Datum):
                if arg0.kind == "list" and not arg0.tainted:
                    return len(arg0.children)
                if arg0.shape:
                    return arg0.shape[0]
                n = arg0.attrs.get("n")
                if isinstance(n, int):
                    return n
                return UNKNOWN
            if isinstance(arg0, (tuple, dict)):
                return len(arg0)
            if isinstance(arg0, str):
                return len(arg0)
            return UNKNOWN
        if last == "enumerate":
            items = self._concrete_items(arg0)
            if items is None:
                return UNKNOWN
            start = _concrete_int(args[1]) if len(args) > 1 else 0
            if start is None:
                return UNKNOWN
            return [(start + i, v) for i, v in enumerate(items)]
        if last == "zip":
            columns = [self._concrete_items(a) for a in args]
            if any(c is None for c in columns):
                return UNKNOWN
            return [tuple(vs) for vs in zip(*columns)]
        if last in ("list", "tuple", "sorted", "reversed"):
            items = self._concrete_items(arg0)
            if items is None:
                self._read_datums(args, node)
                return UNKNOWN
            if last == "tuple":
                return tuple(items)
            if last == "reversed":
                items = list(reversed(items))
            if last == "sorted":
                try:
                    items = sorted(items)
                except TypeError:
                    pass
            datum = self._new_datum("<list>", kind="list")
            for i, v in enumerate(items):
                datum.children[i] = v
            return datum
        if last in _READER_BUILTINS:
            self._read_datums(list(args) + list(kwargs.values()), node)
            if last in ("int", "float", "abs", "round") \
                    and isinstance(arg0, (int, float)) \
                    and not isinstance(arg0, bool):
                try:
                    return {"int": int, "float": float, "abs": abs,
                            "round": round}[last](arg0)
                except Exception:
                    return UNKNOWN
            if last in ("min", "max", "sum") \
                    and args and all(
                        isinstance(a, (int, float))
                        and not isinstance(a, bool) for a in args):
                try:
                    return {"min": min, "max": max,
                            "sum": sum}[last](*args)
                except Exception:
                    return UNKNOWN
            return UNKNOWN
        return UNKNOWN

    # -- finalisation ----------------------------------------------------

    def finalize(self) -> None:
        self._sync()
        self._flush_renaming_pressure()


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def _suppression_filter(findings: list[Finding],
                        indices: dict[str, SuppressionIndex]) -> list[Finding]:
    kept = []
    for f in findings:
        index = indices.get(f.file)
        if index is None:
            try:
                index = SuppressionIndex.from_source(
                    Path(f.file).read_text(encoding="utf-8")
                )
            except (OSError, SyntaxError):
                index = SuppressionIndex.from_source("")
            indices[f.file] = index
        if not index.is_suppressed(f.rule, f.line):
            kept.append(f)
    return kept


def flow_source(
    source: str,
    filename: str = "<flow>",
    *,
    entry: Optional[str] = None,
    options: Optional[FlowOptions] = None,
) -> FlowResult:
    """Analyze one driver program; returns findings plus the skeleton.

    With *entry* the module body runs under its own name (``__main__``
    guards stay cold) and then ``entry()`` is interpreted; without it
    the module is analyzed as the main program.
    """

    options = options or FlowOptions()
    interp = _Interp(options, filename, entry)
    name = "__main__" if entry is None else Path(filename).stem
    module = interp.load_root(source, filename, name)
    if entry is not None:
        try:
            fn = module.env.lookup(entry)
        except KeyError:
            raise ValueError(
                f"entry point {entry!r} not found in {filename}"
            ) from None
        interp._module_stack.append(module)
        try:
            if isinstance(fn, _Func):
                interp._call_func(fn, [], {}, module_node_stub(fn))
            elif isinstance(fn, _TaskDef):
                interp._run_recorded([fn], {}, module_node_stub(fn))
            else:
                raise ValueError(f"entry point {entry!r} is not a function")
        except (_OutOfBudget, _Return):
            pass
        finally:
            interp._module_stack.pop()
    interp.finalize()

    indices = {filename: SuppressionIndex.from_source(source)}
    findings = _suppression_filter(interp.findings, indices)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return FlowResult(findings=findings, graph=interp.graph)


def module_node_stub(fn) -> ast.AST:
    """A location-bearing node for calls synthesised by the driver."""

    node = getattr(fn, "node", None)
    if node is not None:
        return node
    stub = ast.Pass()
    stub.lineno, stub.col_offset = 1, 0
    return stub


def flow_file(
    path: str | Path,
    *,
    entry: Optional[str] = None,
    options: Optional[FlowOptions] = None,
) -> FlowResult:
    path = Path(path)
    return flow_source(
        path.read_text(encoding="utf-8"), str(path),
        entry=entry, options=options,
    )


def flow_paths(
    paths: Iterable[str | Path],
    *,
    options: Optional[FlowOptions] = None,
) -> list[Finding]:
    """Analyze files/directories; returns all surviving findings."""

    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py" or p.is_file():
            files.append(p)
        else:
            raise OSError(f"no such file or directory: {p}")
    findings: list[Finding] = []
    for f in files:
        findings.extend(flow_file(f, options=options).findings)
    return findings


def render_graph_json(result: FlowResult) -> str:
    return json.dumps(result.graph.to_json_dict(), indent=2)
