"""Symbolic interval domain for the whole-program analyzer.

``repro.check.flow`` abstractly executes driver programs: loop bounds,
block indices and region bounds that are concrete integers stay
concrete, but a loop the interpreter cannot (or chooses not to) unroll
binds its induction variable to an :class:`Interval` — the convex hull
of every value it would take.  Region specifiers are then evaluated
over this domain via :meth:`repro.core.pragma.RegionSpec.symbolic_bounds`,
which works because :class:`Interval` implements ordinary Python
arithmetic.

The domain is the classic one:

* ``[lo, hi]`` with ``None`` meaning unbounded on that side;
* all operations are *over*-approximations (the result interval
  contains every concrete result), so anything the flow analyzer
  **proves** over intervals (e.g. two regions are disjoint, or two
  regions must partially overlap because both are singletons) holds for
  every concrete execution — the zero-false-positive direction the
  static layer promises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

__all__ = ["Interval", "TOP", "eval_expr_ast"]


def _neg(v: Optional[int]) -> Optional[int]:
    return None if v is None else -v


def _min(*values: Optional[int]) -> Optional[int]:
    if any(v is None for v in values):
        return None
    return min(values)  # type: ignore[type-var]


def _max(*values: Optional[int]) -> Optional[int]:
    if any(v is None for v in values):
        return None
    return max(values)  # type: ignore[type-var]


@dataclass(frozen=True)
class Interval:
    """Inclusive integer interval; ``None`` bounds are +-infinity."""

    lo: Optional[int] = None
    hi: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors --------------------------------------------------
    @classmethod
    def const(cls, value: int) -> "Interval":
        return cls(value, value)

    @classmethod
    def of(cls, value: Union[int, "Interval"]) -> "Interval":
        if isinstance(value, Interval):
            return value
        return cls.const(int(value))

    @classmethod
    def from_range(cls, start: int, stop: int, step: int = 1) -> "Interval":
        """Hull of ``range(start, stop, step)`` (must be non-empty)."""

        if step == 0:
            raise ValueError("zero step")
        count = (stop - start + (step - (1 if step > 0 else -1))) // step
        if count <= 0:
            raise ValueError("empty range")
        last = start + (count - 1) * step
        return cls(min(start, last), max(start, last))

    # -- predicates ----------------------------------------------------
    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    @property
    def is_constant(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    @property
    def constant(self) -> int:
        if not self.is_constant:
            raise ValueError(f"{self} is not a constant")
        assert self.lo is not None
        return self.lo

    def contains(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def must_precede(self, other: "Interval") -> bool:
        """Every value of self < every value of *other*."""

        return (
            self.hi is not None and other.lo is not None and self.hi < other.lo
        )

    def must_disjoint(self, other: "Interval") -> bool:
        return self.must_precede(other) or other.must_precede(self)

    def join(self, other: "Interval") -> "Interval":
        """Convex hull of both intervals."""

        return Interval(_min(self.lo, other.lo), _max(self.hi, other.hi))

    # -- arithmetic (over-approximating) -------------------------------
    def __neg__(self) -> "Interval":
        return Interval(_neg(self.hi), _neg(self.lo))

    def __pos__(self) -> "Interval":
        return self

    def __add__(self, other) -> "Interval":
        other = Interval.of(other)
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    __radd__ = __add__

    def __sub__(self, other) -> "Interval":
        return self + (-Interval.of(other))

    def __rsub__(self, other) -> "Interval":
        return Interval.of(other) + (-self)

    def _corners(self, other: "Interval", op) -> "Interval":
        if None in (self.lo, self.hi, other.lo, other.hi):
            return TOP
        values = [
            op(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(min(values), max(values))

    def __mul__(self, other) -> "Interval":
        return self._corners(Interval.of(other), lambda a, b: a * b)

    __rmul__ = __mul__

    def __floordiv__(self, other) -> "Interval":
        other = Interval.of(other)
        if other.contains(0):
            return TOP
        if None in (self.lo, self.hi, other.lo, other.hi):
            return TOP
        # Cover both C99 truncation and Python flooring so the result
        # is safe whichever integer-division convention produced it.
        values = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                values.append(a // b)
                q = abs(a) // abs(b)
                values.append(q if (a >= 0) == (b >= 0) else -q)
        return Interval(min(values), max(values))

    __truediv__ = __floordiv__

    def __mod__(self, other) -> "Interval":
        other = Interval.of(other)
        if not other.is_constant or other.constant == 0:
            return TOP
        bound = abs(other.constant) - 1
        if self.lo is not None and self.lo >= 0:
            return Interval(0, bound)
        return Interval(-bound, bound)

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


TOP = Interval(None, None)


def eval_expr_ast(node: tuple, env: Mapping[str, object]) -> Interval:
    """Evaluate a :class:`repro.core.pragma.Expr` AST over intervals.

    *env* maps names to ints or :class:`Interval`; a missing name (or a
    non-integer value) evaluates to :data:`TOP` — the analyzer prefers
    imprecision over a wrong bound.
    """

    kind = node[0]
    if kind == "int":
        return Interval.const(node[1])
    if kind == "name":
        value = env.get(node[1])
        if isinstance(value, Interval):
            return value
        if isinstance(value, bool) or not isinstance(value, int):
            return TOP
        return Interval.const(value)
    if kind == "unary":
        operand = eval_expr_ast(node[2], env)
        return -operand if node[1] == "-" else operand
    if kind == "binop":
        op = node[1]
        left = eval_expr_ast(node[2], env)
        right = eval_expr_ast(node[3], env)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left // right
        if op == "%":
            return left % right
    return TOP
