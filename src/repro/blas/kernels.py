"""Tile kernels: the numerical payload of every task in the paper.

These are plain functions over numpy arrays — no runtime involvement —
mirroring how the paper's tasks "have been implemented using highly
tuned BLAS libraries".  numpy dispatches to the platform BLAS/LAPACK,
which is this reproduction's Goto/MKL stand-in.

Conventions (matching the paper's Cholesky in Figure 4):

* factorisations are lower-triangular, in place;
* ``gemm_nt(a, b, c)`` computes the trailing update ``c -= a @ b.T``
  used by blocked Cholesky;
* ``gemm(a, b, c)`` computes the accumulation ``c += a @ b`` used by
  the matrix-multiplication codes (Figures 1 and 3).

Every kernel also reports its flop count through :func:`flops_of`, used
by the machine simulator's cost model and by benchmark Gflops figures.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

__all__ = [
    "gemm",
    "gemm_nt",
    "syrk",
    "trsm",
    "potrf",
    "geadd",
    "gesub",
    "gecopy",
    "flops_of",
    "KernelError",
]


class KernelError(ValueError):
    """Raised on shape/semantic errors in a tile kernel."""


def _check_square(name: str, *mats: np.ndarray) -> int:
    size = None
    for m in mats:
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise KernelError(f"{name}: tiles must be square, got {m.shape}")
        if size is None:
            size = m.shape[0]
        elif m.shape[0] != size:
            raise KernelError(f"{name}: tile sizes differ ({size} vs {m.shape[0]})")
    return size or 0


def gemm(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """``c += a @ b`` (the matmul task of Figures 1 and 3)."""

    if a.shape[1] != b.shape[0] or c.shape != (a.shape[0], b.shape[1]):
        raise KernelError(
            f"gemm: incompatible shapes {a.shape} @ {b.shape} -> {c.shape}"
        )
    c += a @ b


def gemm_nt(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """``c -= a @ b.T`` (the Cholesky trailing update of Figure 4)."""

    if a.shape[1] != b.shape[1] or c.shape != (a.shape[0], b.shape[0]):
        raise KernelError(
            f"gemm_nt: incompatible shapes {a.shape} @ {b.shape}.T -> {c.shape}"
        )
    c -= a @ b.T


def syrk(a: np.ndarray, b: np.ndarray) -> None:
    """``b -= a @ a.T`` (symmetric rank-k update on the diagonal tile)."""

    if b.shape != (a.shape[0], a.shape[0]):
        raise KernelError(f"syrk: incompatible shapes {a.shape} -> {b.shape}")
    b -= a @ a.T


def trsm(a: np.ndarray, b: np.ndarray) -> None:
    """Solve ``x @ a.T = b`` in place: ``b <- b @ a^-T``.

    *a* is the lower-triangular diagonal tile produced by :func:`potrf`;
    *b* is a sub-diagonal tile of the panel (Figure 4's ``strsm_t``).
    """

    _check_square("trsm", a)
    if b.shape[1] != a.shape[0]:
        raise KernelError(f"trsm: incompatible shapes {a.shape} vs {b.shape}")
    b[...] = sla.solve_triangular(a, b.T, lower=True, check_finite=False).T


def potrf(a: np.ndarray) -> None:
    """In-place lower Cholesky factorisation of a diagonal tile."""

    _check_square("potrf", a)
    a[...] = sla.cholesky(a, lower=True, check_finite=False)


def geadd(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """``c = a + b`` (Strassen's tile addition)."""

    if a.shape != b.shape or c.shape != a.shape:
        raise KernelError(f"geadd: shape mismatch {a.shape}/{b.shape}/{c.shape}")
    np.add(a, b, out=c)


def gesub(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """``c = a - b`` (Strassen's tile subtraction)."""

    if a.shape != b.shape or c.shape != a.shape:
        raise KernelError(f"gesub: shape mismatch {a.shape}/{b.shape}/{c.shape}")
    np.subtract(a, b, out=c)


def gecopy(src: np.ndarray, dst: np.ndarray) -> None:
    """``dst = src`` (block copies; Figure 10's memcpy loops)."""

    if src.shape != dst.shape:
        raise KernelError(f"gecopy: shape mismatch {src.shape} vs {dst.shape}")
    dst[...] = src


# ---------------------------------------------------------------------------
# Flop accounting (used for Gflops figures and the simulator cost model)
# ---------------------------------------------------------------------------

def flops_of(kernel: str, m: int, n: int | None = None, k: int | None = None) -> int:
    """Floating-point operations of one tile kernel invocation.

    *m* is the tile edge for square tiles; gemm variants accept the full
    (m, n, k) triple.  Counts use the standard dense-linear-algebra
    conventions (multiply+add = 2 flops).
    """

    n = m if n is None else n
    k = m if k is None else k
    table = {
        "gemm": 2 * m * n * k,
        "gemm_nt": 2 * m * n * k,
        "syrk": m * m * k + m * k,  # ~ m^2 k (half of gemm on the full tile)
        "trsm": m * n * n,
        "potrf": m * m * m // 3 + m * m // 2,
        "geadd": m * n,
        "gesub": m * n,
        "gecopy": 0,
    }
    try:
        return table[kernel]
    except KeyError:
        raise KernelError(f"unknown kernel {kernel!r}") from None
