"""BLAS substrate: numpy-backed tile kernels + matrix containers.

Stands in for the paper's "highly tuned BLAS libraries" (non-threaded
Goto BLAS 1.20 and MKL 9.1): numerically correct level-3 tile kernels
(:mod:`repro.blas.kernels`), naive reference implementations for
verification (:mod:`repro.blas.reference`), hyper-matrix containers
(section IV) and flat-matrix blocking helpers (section VI.A, Figure 10).
"""

from .flat import alloc_block, get_block, put_block, to_blocked, from_blocked
from .hypermatrix import HyperMatrix
from .kernels import (
    gemm,
    gemm_nt,
    geadd,
    gesub,
    potrf,
    syrk,
    trsm,
)

__all__ = [
    "HyperMatrix",
    "alloc_block",
    "get_block",
    "put_block",
    "to_blocked",
    "from_blocked",
    "gemm",
    "gemm_nt",
    "geadd",
    "gesub",
    "potrf",
    "syrk",
    "trsm",
]
