"""Hyper-matrices (section IV).

"A typical case is to use hyper-matrices to decompose a linear algebra
algorithm.  In the following examples we will use 1-level hyper-matrixes
of N by N blocks, each of M by M elements."

A :class:`HyperMatrix` is an N-by-N grid whose cells are either ``None``
(absent block — the sparse codes of Figure 3) or an M-by-M numpy array.
Block arrays are *stable objects*: the dependency engine tracks them by
identity, exactly as the C runtime tracks their base addresses.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

__all__ = ["HyperMatrix"]


class HyperMatrix:
    """N x N grid of M x M blocks (cells may be ``None`` when sparse)."""

    def __init__(self, n_blocks: int, block_size: int, dtype=np.float32):
        if n_blocks < 1 or block_size < 1:
            raise ValueError("n_blocks and block_size must be positive")
        self.n = n_blocks
        self.m = block_size
        self.dtype = np.dtype(dtype)
        self._blocks: list[list[Optional[np.ndarray]]] = [
            [None] * n_blocks for _ in range(n_blocks)
        ]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, n_blocks: int, block_size: int, dtype=np.float32) -> "HyperMatrix":
        hm = cls(n_blocks, block_size, dtype)
        for i in range(n_blocks):
            for j in range(n_blocks):
                hm._blocks[i][j] = np.zeros((block_size, block_size), dtype)
        return hm

    @classmethod
    def from_dense(cls, matrix: np.ndarray, block_size: int) -> "HyperMatrix":
        """Split a flat matrix into blocks (copies, like Figure 10)."""

        size = matrix.shape[0]
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"need a square matrix, got {matrix.shape}")
        if size % block_size:
            raise ValueError(f"{size} not divisible by block size {block_size}")
        n = size // block_size
        hm = cls(n, block_size, matrix.dtype)
        for i in range(n):
            for j in range(n):
                hm._blocks[i][j] = np.array(
                    matrix[
                        i * block_size : (i + 1) * block_size,
                        j * block_size : (j + 1) * block_size,
                    ],
                    copy=True,
                )
        return hm

    @classmethod
    def random(
        cls, n_blocks: int, block_size: int, dtype=np.float32, seed: int = 0
    ) -> "HyperMatrix":
        rng = np.random.default_rng(seed)
        hm = cls(n_blocks, block_size, dtype)
        for i in range(n_blocks):
            for j in range(n_blocks):
                hm._blocks[i][j] = rng.standard_normal(
                    (block_size, block_size)
                ).astype(dtype)
        return hm

    @classmethod
    def random_spd(
        cls, n_blocks: int, block_size: int, dtype=np.float64, seed: int = 0
    ) -> "HyperMatrix":
        """A symmetric positive-definite hyper-matrix (Cholesky input)."""

        size = n_blocks * block_size
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((size, size))
        spd = (x @ x.T + size * np.eye(size)).astype(dtype)
        return cls.from_dense(spd, block_size)

    @classmethod
    def random_sparse(
        cls,
        n_blocks: int,
        block_size: int,
        density: float = 0.3,
        dtype=np.float32,
        seed: int = 0,
    ) -> "HyperMatrix":
        """A block-sparse hyper-matrix (Figure 3's input)."""

        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density {density} out of [0, 1]")
        rng = np.random.default_rng(seed)
        hm = cls(n_blocks, block_size, dtype)
        for i in range(n_blocks):
            for j in range(n_blocks):
                if rng.random() < density:
                    hm._blocks[i][j] = rng.standard_normal(
                        (block_size, block_size)
                    ).astype(dtype)
        return hm

    # ------------------------------------------------------------------
    # element access (grid level)
    # ------------------------------------------------------------------
    def __getitem__(self, idx):
        # hm[i][j] -> row list (mirrors the paper's A[i][j] C syntax);
        # hm[i, j] -> block.
        if isinstance(idx, tuple):
            i, j = idx
            return self._blocks[i][j]
        return self._blocks[idx]

    def __setitem__(self, idx, value) -> None:
        if isinstance(idx, tuple):
            i, j = idx
            self._check_block(value)
            self._blocks[i][j] = value
        else:
            raise TypeError("assign blocks with hm[i, j] = block")

    def _check_block(self, value) -> None:
        if value is not None:
            if not isinstance(value, np.ndarray) or value.shape != (self.m, self.m):
                raise ValueError(
                    f"block must be a {self.m}x{self.m} ndarray or None"
                )

    def alloc_block(self, i: int, j: int) -> np.ndarray:
        """Allocate (zeroed) block (i, j) if absent; return it.

        Mirrors Figure 3's ``if (C[i][j] == NULL) C[i][j] = alloc_block()``.
        """

        if self._blocks[i][j] is None:
            self._blocks[i][j] = np.zeros((self.m, self.m), self.dtype)
        return self._blocks[i][j]

    # ------------------------------------------------------------------
    # inspection / conversion
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Edge length of the represented flat matrix."""

        return self.n * self.m

    def present_blocks(self) -> Iterator[tuple[int, int, np.ndarray]]:
        for i in range(self.n):
            for j in range(self.n):
                block = self._blocks[i][j]
                if block is not None:
                    yield i, j, block

    def block_count(self) -> int:
        return sum(1 for _ in self.present_blocks())

    def to_dense(self, fill: float = 0.0) -> np.ndarray:
        out = np.full((self.size, self.size), fill, dtype=self.dtype)
        for i, j, block in self.present_blocks():
            out[i * self.m : (i + 1) * self.m, j * self.m : (j + 1) * self.m] = block
        return out

    def lower_to_dense(self) -> np.ndarray:
        """Dense matrix from the lower triangle only (Cholesky output)."""

        out = np.zeros((self.size, self.size), dtype=self.dtype)
        for i in range(self.n):
            for j in range(i + 1):
                block = self._blocks[i][j]
                if block is not None:
                    piece = np.tril(block) if i == j else block
                    out[
                        i * self.m : (i + 1) * self.m,
                        j * self.m : (j + 1) * self.m,
                    ] = piece
        return out

    def copy(self) -> "HyperMatrix":
        dup = HyperMatrix(self.n, self.m, self.dtype)
        for i, j, block in self.present_blocks():
            dup._blocks[i][j] = np.array(block, copy=True)
        return dup

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<HyperMatrix {self.n}x{self.n} blocks of {self.m}x{self.m} "
            f"{self.dtype}, {self.block_count()} present>"
        )
