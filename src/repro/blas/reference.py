"""Naive reference implementations used to verify the tile kernels.

Pure-Python triple loops (on tiny tiles) so the vectorised kernels in
:mod:`repro.blas.kernels` are checked against an independent oracle —
the guides' "make it work reliably" step before any optimisation.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "ref_gemm",
    "ref_gemm_nt",
    "ref_syrk",
    "ref_trsm",
    "ref_potrf",
    "ref_cholesky",
    "ref_lu_partial_pivot",
]


def ref_gemm(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Return ``c + a @ b`` computed with explicit loops."""

    m, k = a.shape
    k2, n = b.shape
    assert k == k2
    out = np.array(c, dtype=np.float64, copy=True)
    for i in range(m):
        for j in range(n):
            acc = 0.0
            for p in range(k):
                acc += float(a[i, p]) * float(b[p, j])
            out[i, j] += acc
    return out


def ref_gemm_nt(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Return ``c - a @ b.T`` computed with explicit loops."""

    return ref_gemm(-a, np.array(b.T), c)


def ref_syrk(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Return ``b - a @ a.T``."""

    return ref_gemm(-a, np.array(a.T), b)


def ref_trsm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Return x solving ``x @ a.T = b`` with forward substitution."""

    m = a.shape[0]
    rows, _ = b.shape
    x = np.zeros_like(b, dtype=np.float64)
    for r in range(rows):
        for j in range(m):
            acc = float(b[r, j])
            for p in range(j):
                acc -= float(a[j, p]) * float(x[r, p])
            x[r, j] = acc / float(a[j, j])
    return x


def ref_potrf(a: np.ndarray) -> np.ndarray:
    """Return the lower Cholesky factor via the textbook algorithm."""

    m = a.shape[0]
    L = np.zeros_like(a, dtype=np.float64)
    for i in range(m):
        for j in range(i + 1):
            acc = float(a[i, j])
            for p in range(j):
                acc -= float(L[i, p]) * float(L[j, p])
            if i == j:
                if acc <= 0.0:
                    raise ValueError("matrix not positive definite")
                L[i, j] = math.sqrt(acc)
            else:
                L[i, j] = acc / float(L[j, j])
    return L


def ref_cholesky(a: np.ndarray) -> np.ndarray:
    """Full-matrix lower Cholesky oracle (tril of the factor)."""

    return ref_potrf(np.array(a, dtype=np.float64))


def ref_lu_partial_pivot(a: np.ndarray) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Textbook LU with partial (row) pivoting: returns (L, U, perm)."""

    n = a.shape[0]
    u = np.array(a, dtype=np.float64, copy=True)
    l = np.eye(n)
    perm = list(range(n))
    for k in range(n):
        pivot = max(range(k, n), key=lambda r: abs(float(u[r, k])))
        if pivot != k:
            u[[k, pivot], k:] = u[[pivot, k], k:]
            l[[k, pivot], :k] = l[[pivot, k], :k]
            perm[k], perm[pivot] = perm[pivot], perm[k]
        for r in range(k + 1, n):
            factor = float(u[r, k]) / float(u[k, k])
            l[r, k] = factor
            u[r, k:] -= factor * u[k, k:]
            u[r, k] = 0.0
    return l, u, perm
