"""Flat-matrix blocking helpers (section VI.A, Figures 9 and 10).

"The flat input matrix is copied block by block into an hyper-matrix on
an as needed basis" — these are the plain-function versions of
``get_block``/``put_block``; the task-annotated versions (which receive
the flat matrix as an *opaque* pointer, skipping dependency analysis)
live in :mod:`repro.apps.tasks`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["alloc_block", "get_block", "put_block", "to_blocked", "from_blocked"]


def alloc_block(m: int, dtype=np.float32) -> np.ndarray:
    """Allocate one uninitialised M x M block (the paper's alloc_block)."""

    return np.empty((m, m), dtype)


def get_block(i: int, j: int, flat: np.ndarray, block: np.ndarray) -> None:
    """Copy block (i, j) of *flat* into *block* (Figure 10's get_block)."""

    m = block.shape[0]
    block[...] = flat[i * m : (i + 1) * m, j * m : (j + 1) * m]


def put_block(i: int, j: int, block: np.ndarray, flat: np.ndarray) -> None:
    """Copy *block* back into block (i, j) of *flat* (Figure 10)."""

    m = block.shape[0]
    flat[i * m : (i + 1) * m, j * m : (j + 1) * m] = block


def to_blocked(flat: np.ndarray, m: int) -> list[list[np.ndarray]]:
    """Copy a flat matrix into a nested-list hyper-matrix of M x M blocks."""

    size = flat.shape[0]
    if size % m:
        raise ValueError(f"matrix size {size} not divisible by block size {m}")
    n = size // m
    grid: list[list[np.ndarray]] = []
    for i in range(n):
        row = []
        for j in range(n):
            block = alloc_block(m, flat.dtype)
            get_block(i, j, flat, block)
            row.append(block)
        grid.append(row)
    return grid


def from_blocked(grid: list[list[np.ndarray]], out: np.ndarray) -> None:
    """Copy every present block of *grid* back into the flat matrix."""

    for i, row in enumerate(grid):
        for j, block in enumerate(row):
            if block is not None:
                put_block(i, j, block, out)
