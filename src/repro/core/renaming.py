"""Renaming support: storage adapters and version storage management.

Section II: "In order to reduce dependencies, the SMPSs runtime is
capable of renaming the data, leaving only the true dependencies.  This
is the same technique used by superscalar processors and optimizing
compilers."

Renaming means a write to a datum may be redirected to a freshly
allocated buffer so that earlier readers (WAR) or an earlier writer
(WAW) of the old value are not serialised against the new writer.  In C
the runtime mallocs anonymous buffers; in this Python binding the
equivalent operations are provided per object type by a
:class:`DataAdapter`:

* ``fresh_like`` — allocate an uninitialised buffer of the same shape
  (used for renamed ``output`` parameters, whose old content is dead);
* ``clone`` — allocate a copy (used for renamed ``inout`` parameters,
  which read the previous value);
* ``write_back`` — copy the final version back into the user's object
  at a barrier, so the program observes sequential semantics.

The module also defines :class:`Version`: one immutable element of a
datum's version chain, with lazy storage materialisation.  Laziness
matters: a renamed buffer is only allocated when (and where) the
producing task actually runs, which is also what gives SMPSs its
"realigning data due to renamings" locality benefit noted in the
N Queens discussion (section VI.E).
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Optional

import numpy as np

__all__ = [
    "DataAdapter",
    "AdapterRegistry",
    "default_registry",
    "Version",
    "StorageKind",
    "RenamingError",
]


class RenamingError(RuntimeError):
    """Raised when storage operations are applied to unsupported data."""


class DataAdapter:
    """Type-specific storage operations used by the renaming engine."""

    #: Whether the engine may rename objects of this type.  Types that
    #: cannot be re-created faithfully (or whose identity is load-bearing,
    #: like representants) keep ``False`` and get WAR/WAW edges instead.
    renamable = False

    def matches(self, obj: Any) -> bool:
        raise NotImplementedError

    def fresh_like(self, obj: Any) -> Any:
        raise RenamingError(f"{type(obj).__name__} objects cannot be renamed")

    def clone(self, obj: Any) -> Any:
        raise RenamingError(f"{type(obj).__name__} objects cannot be cloned")

    def write_back(self, base: Any, storage: Any) -> None:
        raise RenamingError(
            f"{type(base).__name__} objects cannot receive a write-back"
        )

    def shape_of(self, obj: Any) -> Optional[tuple]:
        return None

    def size_of(self, obj: Any) -> int:
        """Approximate storage footprint in bytes (memory accounting)."""

        return 64


class NdarrayAdapter(DataAdapter):
    """Adapter for numpy arrays — the workhorse for all paper codes.

    ``clone``/``fresh_like`` produce C-contiguous buffers regardless of
    the source layout; this is the "realigning" effect the paper credits
    for the 1-thread N Queens advantage.
    """

    renamable = True

    def matches(self, obj: Any) -> bool:
        return isinstance(obj, np.ndarray)

    def fresh_like(self, obj: np.ndarray) -> np.ndarray:
        return np.empty_like(obj, order="C", subok=False)

    def clone(self, obj: np.ndarray) -> np.ndarray:
        return np.array(obj, order="C", copy=True, subok=False)

    def write_back(self, base: np.ndarray, storage: np.ndarray) -> None:
        if base.shape != storage.shape:
            raise RenamingError(
                f"write-back shape mismatch: {base.shape} vs {storage.shape}"
            )
        base[...] = storage

    def shape_of(self, obj: np.ndarray) -> tuple:
        return obj.shape

    def size_of(self, obj: np.ndarray) -> int:
        return int(obj.nbytes)


class ListAdapter(DataAdapter):
    """Adapter for plain Python lists (1-D arrays of objects)."""

    renamable = True

    def matches(self, obj: Any) -> bool:
        return isinstance(obj, list)

    def fresh_like(self, obj: list) -> list:
        return [None] * len(obj)

    def clone(self, obj: list) -> list:
        return list(obj)

    def write_back(self, base: list, storage: list) -> None:
        base[:] = storage

    def shape_of(self, obj: list) -> tuple:
        return (len(obj),)


class BytearrayAdapter(DataAdapter):
    renamable = True

    def matches(self, obj: Any) -> bool:
        return isinstance(obj, bytearray)

    def fresh_like(self, obj: bytearray) -> bytearray:
        return bytearray(len(obj))

    def clone(self, obj: bytearray) -> bytearray:
        return bytearray(obj)

    def write_back(self, base: bytearray, storage: bytearray) -> None:
        base[:] = storage

    def shape_of(self, obj: bytearray) -> tuple:
        return (len(obj),)


class GenericObjectAdapter(DataAdapter):
    """Fallback: any mutable object is tracked by identity, never renamed.

    WAR/WAW hazards on such objects become graph edges — still correct,
    just with less parallelism, mirroring the paper's representants.
    """

    renamable = False

    def matches(self, obj: Any) -> bool:
        return True

    def shape_of(self, obj: Any) -> Optional[tuple]:
        return None


class AdapterRegistry:
    """Ordered adapter lookup, first match wins; extensible by users.

    Lookups are memoised per concrete type: ``matches`` implementations
    are ``isinstance`` checks, so every instance of a type resolves to
    the same adapter and the scan need only run once per type.  The
    memo is invalidated on :meth:`register`.
    """

    def __init__(self) -> None:
        self._adapters: list[DataAdapter] = []
        self._by_type: dict[type, DataAdapter] = {}

    def register(self, adapter: DataAdapter, *, prepend: bool = True) -> None:
        if prepend:
            self._adapters.insert(0, adapter)
        else:
            self._adapters.append(adapter)
        self._by_type.clear()

    def adapter_for(self, obj: Any) -> DataAdapter:
        adapter = self._by_type.get(type(obj))
        if adapter is not None:
            return adapter
        for adapter in self._adapters:
            if adapter.matches(obj):
                self._by_type[type(obj)] = adapter
                return adapter
        raise RenamingError(f"no adapter for {type(obj).__name__}")  # pragma: no cover


def default_registry() -> AdapterRegistry:
    registry = AdapterRegistry()
    registry.register(GenericObjectAdapter(), prepend=False)
    registry.register(BytearrayAdapter(), prepend=False)
    registry.register(ListAdapter(), prepend=False)
    registry.register(NdarrayAdapter(), prepend=False)
    # ndarray first:
    registry._adapters.reverse()
    return registry


# ---------------------------------------------------------------------------
# Versions
# ---------------------------------------------------------------------------


class StorageKind(enum.Enum):
    #: The user's own object: the initial version of every chain.
    INITIAL = "initial"
    #: Shares its predecessor's buffer (in-place update, no hazard).
    SAME = "same"
    #: Freshly allocated, content undefined (renamed ``output``).
    FRESH = "fresh"
    #: Copy of the predecessor's buffer (renamed ``inout``).
    CLONE = "clone"


class Version:
    """One version of a datum: a node in the renaming chain.

    ``resolve_storage`` materialises lazily and is safe to call from the
    worker that runs the producing task: by then every true dependency
    of the producer has finished, so a CLONE source is final.
    """

    __slots__ = (
        "datum", "index", "kind", "prev", "producer", "readers",
        "_storage", "_lock", "released", "root",
    )

    def __init__(
        self,
        datum: "Any",
        index: int,
        kind: StorageKind,
        prev: Optional["Version"] = None,
        producer=None,
    ) -> None:
        self.datum = datum
        self.index = index
        self.kind = kind
        self.prev = prev
        #: TaskInstance that produces this version (None: initial data).
        self.producer = producer
        #: TaskInstances that read this version (pruned lazily).
        self.readers: list = []
        self._storage: Any = None
        #: Materialisation lock — only FRESH/CLONE versions ever
        #: materialise or drop storage, so INITIAL/SAME versions (the
        #: bulk of a fine-grained submission stream) carry None.  The
        #: lock itself is the owning datum's (one per user object, not
        #: one allocation per renamed version).
        self._lock = (
            datum.mat_lock
            if kind is StorageKind.FRESH or kind is StorageKind.CLONE
            else None
        )
        #: Set when the renamed buffer was garbage-collected (the
        #: runtime's memory-limit machinery); resolving it again would
        #: be a use-after-free bug, so it raises.
        self.released = False
        #: The version that actually owns this version's storage: SAME
        #: versions alias their predecessor's buffer, and long in-place
        #: chains (one per inout task) would otherwise make storage
        #: resolution O(chain length) / recursive.  Computed eagerly in
        #: O(1) because the predecessor's root is already flat.
        if kind is StorageKind.SAME:
            assert prev is not None
            self.root = prev.root
            # Collapse the prev pointer too: an in-place chain would
            # otherwise pin one Version object per task until the next
            # barrier.  The root is the only predecessor that matters
            # (it owns the storage the memory manager reasons about).
            self.prev = self.root
        else:
            self.root = self

    def resolve_storage(self) -> Any:
        if self.root is not self:
            return self.root.resolve_storage()
        if self.kind is StorageKind.INITIAL:
            return self.datum.base
        # Materialised storage is final until released, so the common
        # re-resolve (every reader after the producer) skips the lock.
        # This also keeps the shared per-datum lock non-recursive: a
        # CLONE materialising under it resolves its predecessor — by
        # then always INITIAL or already materialised — lock-free.
        storage = self._storage
        if storage is not None:
            return storage
        with self._lock:
            if self.released:
                raise RenamingError(
                    f"version {self.index} of {self.datum!r} was released; "
                    f"this is a runtime lifetime bug"
                )
            if self._storage is None:
                adapter = self.datum.adapter
                if self.kind is StorageKind.FRESH:
                    self._storage = adapter.fresh_like(self.datum.base)
                else:  # CLONE
                    assert self.prev is not None
                    tracker = self.datum.tracker
                    if (
                        tracker is not None
                        and tracker.residency_fetch is not None
                    ):
                        # Cluster backend: the predecessor's bytes may
                        # live on a remote node; make the master copy
                        # current before cloning it.
                        tracker.residency_fetch(self.prev)
                    self._storage = adapter.clone(self.prev.resolve_storage())
                self.datum.on_rename_materialised(self)
            return self._storage

    @property
    def is_materialised(self) -> bool:
        root = self.root
        return root.kind is StorageKind.INITIAL or root._storage is not None

    def storage_is_base(self) -> bool:
        """True when this version's buffer is the user's own object."""

        return self.root.kind is StorageKind.INITIAL

    def drop_storage(self) -> int:
        """Free a materialised renamed buffer; returns bytes released."""

        if self._lock is None:  # INITIAL/SAME: nothing to free
            return 0
        with self._lock:
            if self._storage is None or self.released:
                return 0
            size = self.datum.adapter.size_of(self._storage)
            self._storage = None
            self.released = True
            return size

    def pending_readers(self) -> list:
        """Readers whose task has not finished yet; prunes the rest."""

        from .task import TaskState

        still = [t for t in self.readers if t.state is not TaskState.FINISHED]
        self.readers = still
        return still

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Version {self.index} of {self.datum!r} kind={self.kind.value} "
            f"producer={getattr(self.producer, 'task_id', None)}>"
        )
