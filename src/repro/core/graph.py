"""The dynamic task graph (section II).

"Whenever the application calls a task, a node in a task graph is added
for each task instance and a series of edges indicating their
dependencies."  Thanks to renaming the graph contains only *true*
dependencies (read-after-write); anti and output dependencies are
removed by the renaming engine — except where renaming is disabled
(region accesses, the ``rename=False`` ablation), in which case the
corresponding edges are inserted explicitly and the graph remains a
correct (if more constrained) execution order.

The graph is not thread-safe by itself: the owning runtime serialises
mutations (the main thread adds nodes, workers retire them under the
runtime lock).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .task import TaskInstance, TaskState

__all__ = ["TaskGraph", "EdgeKind", "GraphStats"]


class EdgeKind:
    """Why an edge exists; useful for analysis and tracing."""

    TRUE = "true"  # read-after-write (flow)
    ANTI = "anti"  # write-after-read (only when renaming is off)
    OUTPUT = "output"  # write-after-write (only when renaming is off)


@dataclass
class GraphStats:
    """Aggregate information about a (possibly still growing) graph."""

    total_tasks: int = 0
    total_edges: int = 0
    edges_by_kind: Counter = field(default_factory=Counter)
    tasks_by_name: Counter = field(default_factory=Counter)
    renames: int = 0


class TaskGraph:
    """Holds task instances and their dependency edges.

    ``keep_finished`` retains retired nodes so the full DAG can be
    exported afterwards (Figure 5); production-sized runs turn it off so
    memory stays proportional to the in-flight window, as the real
    SMPSs runtime does with its graph-size blocking condition.
    """

    def __init__(self, keep_finished: bool = True, tracer=None):
        self.keep_finished = keep_finished
        #: Optional tracer whose :meth:`~repro.core.tracing.Tracer.edge`
        #: is called once per *new* edge — how the live event plane sees
        #: the DAG grow while the main thread is still analysing.
        self.tracer = tracer if tracer else None
        self._tasks: dict[int, TaskInstance] = {}
        #: (pred_id, succ_id) -> kind; only populated when keep_finished
        self._edges: dict[tuple[int, int], str] = {}
        self.stats = GraphStats()
        self._pending = 0  # tasks not yet FINISHED

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: TaskInstance) -> None:
        task_id = task.task_id
        tasks = self._tasks
        if task_id in tasks:
            raise ValueError(f"task id {task_id} added twice")
        tasks[task_id] = task
        self._pending += 1
        stats = self.stats
        stats.total_tasks += 1
        stats.tasks_by_name[task.definition.name] += 1

    def add_dependency(
        self, pred: TaskInstance, succ: TaskInstance, kind: str = EdgeKind.TRUE
    ) -> bool:
        """Add an edge *pred* -> *succ*.

        Returns ``True`` if a new edge was created (duplicate accesses
        to the same datum produce a single edge).  Edges to already
        finished predecessors are ignored — the dependency is satisfied.
        """

        if pred is succ:
            return False
        if pred.state is TaskState.FINISHED:
            return False
        successors = pred.successors
        if succ in successors:
            return False
        successors.add(succ)
        succ.predecessors.add(pred)
        succ.num_pending_deps += 1
        stats = self.stats
        stats.total_edges += 1
        stats.edges_by_kind[kind] += 1
        if self.keep_finished:
            self._edges[(pred.task_id, succ.task_id)] = kind
        if self.tracer is not None:
            self.tracer.edge(pred, succ, kind)
        return True

    def note_rename(self) -> None:
        self.stats.renames += 1

    # ------------------------------------------------------------------
    # execution-side updates
    # ------------------------------------------------------------------
    def complete(self, task: TaskInstance) -> list[TaskInstance]:
        """Retire *task*; return successors that became ready.

        "Whenever a thread has finished running a task, it updates the
        graph and moves all tasks that have become ready to that thread
        ready list" (section III) — the move itself is the scheduler's
        job; we return the newly ready instances.
        """

        if task.state is TaskState.FINISHED:
            raise ValueError(f"{task!r} completed twice")
        task.state = TaskState.FINISHED
        self._pending -= 1
        newly_ready: list[TaskInstance] = []
        keep = self.keep_finished
        blocked = TaskState.BLOCKED
        for succ in task.successors:
            succ.num_pending_deps -= 1
            if succ.num_pending_deps == 0 and succ.state is blocked:
                newly_ready.append(succ)
            if not keep:
                succ.predecessors.discard(task)
        if not keep:
            task.successors.clear()
            del self._tasks[task.task_id]
        # Deterministic order: invocation order, like the runtime's
        # sequential dependency analysis would release them.
        if len(newly_ready) > 1:
            newly_ready.sort(key=lambda t: t.task_id)
        return newly_ready

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Tasks added but not yet finished (the graph-size condition)."""

        return self._pending

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[TaskInstance]:
        return iter(sorted(self._tasks.values(), key=lambda t: t.task_id))

    def get(self, task_id: int) -> Optional[TaskInstance]:
        return self._tasks.get(task_id)

    def edges(self) -> Iterable[tuple[int, int, str]]:
        """All recorded edges as ``(pred_id, succ_id, kind)`` triples."""

        for (pred, succ), kind in self._edges.items():
            yield pred, succ, kind

    def roots(self) -> list[TaskInstance]:
        return [t for t in self if not t.predecessors]

    def critical_path_length(self) -> int:
        """Longest chain of tasks (unit weights); requires keep_finished."""

        depth: dict[int, int] = {}
        for task in self:  # iteration is in id (= topological) order
            best = 0
            for pred in task.predecessors:
                best = max(best, depth.get(pred.task_id, 0))
            depth[task.task_id] = best + 1
        return max(depth.values(), default=0)

    def weighted_critical_path(self, weight) -> float:
        """Longest path with per-task weights ``weight(task) -> float``."""

        finish: dict[int, float] = {}
        best = 0.0
        for task in self:
            start = 0.0
            for pred in task.predecessors:
                start = max(start, finish.get(pred.task_id, 0.0))
            finish[task.task_id] = start + weight(task)
            best = max(best, finish[task.task_id])
        return best

    def critical_path_tasks(self, weight=None) -> list[TaskInstance]:
        """The tasks on (one) longest path, in execution order.

        *weight* maps a task to its cost (default: unit weights, so the
        path realises :meth:`critical_path_length`).  Ties are broken by
        lowest predecessor id, making the result deterministic.
        Requires ``keep_finished`` — a retired graph has no nodes left
        to walk.
        """

        if weight is None:
            weight = lambda _task: 1.0  # noqa: E731
        finish: dict[int, float] = {}
        best_pred: dict[int, Optional[TaskInstance]] = {}
        tail: Optional[TaskInstance] = None
        for task in self:  # id order = topological
            start, chosen = 0.0, None
            for pred in sorted(task.predecessors, key=lambda t: t.task_id):
                pred_finish = finish.get(pred.task_id, 0.0)
                if pred_finish > start:
                    start, chosen = pred_finish, pred
            finish[task.task_id] = start + weight(task)
            best_pred[task.task_id] = chosen
            if tail is None or finish[task.task_id] > finish[tail.task_id]:
                tail = task
        path: list[TaskInstance] = []
        while tail is not None:
            path.append(tail)
            tail = best_pred[tail.task_id]
        path.reverse()
        return path

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (Figure 5 style)."""

        import networkx as nx

        g = nx.DiGraph()
        for task in self:
            g.add_node(task.task_id, name=task.name, state=task.state.value)
        for pred, succ, kind in self.edges():
            g.add_edge(pred, succ, kind=kind)
        return g

    def to_ascii_levels(self, width: int = 72) -> str:
        """Terminal rendering of the DAG by dependency depth.

        One row per level (all tasks whose longest incoming path has
        that length), Figure 5 style: the width of a row is the
        parallelism available once the level above retires.
        """

        depth: dict[int, int] = {}
        for task in self:  # id order = topological
            best = -1
            for pred in task.predecessors:
                best = max(best, depth.get(pred.task_id, -1))
            depth[task.task_id] = best + 1
        levels: dict[int, list[TaskInstance]] = {}
        for task in self:
            levels.setdefault(depth[task.task_id], []).append(task)
        lines = []
        for level in sorted(levels):
            tasks = levels[level]
            ids = " ".join(str(t.task_id) for t in tasks)
            if len(ids) > width - 12:
                ids = ids[: width - 15] + "..."
            lines.append(f"L{level:>3} ({len(tasks):>3}): {ids}")
        return "\n".join(lines)

    def to_dot(self) -> str:
        """GraphViz dot text with one colour per task type (Figure 5)."""

        palette = [
            "lightblue", "lightgreen", "salmon", "gold", "plum",
            "lightgrey", "orange", "cyan",
        ]
        colours: dict[str, str] = {}
        lines = ["digraph tasks {", "  node [style=filled];"]
        for task in self:
            colour = colours.setdefault(
                task.name, palette[len(colours) % len(palette)]
            )
            lines.append(
                f'  t{task.task_id} [label="{task.task_id}", fillcolor={colour}];'
            )
        for pred, succ, kind in sorted(self.edges()):
            style = "" if kind == EdgeKind.TRUE else ' [style=dashed]'
            lines.append(f"  t{pred} -> t{succ}{style};")
        lines.append("}")
        return "\n".join(lines)
