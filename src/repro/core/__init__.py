"""SMPSs core: programming model, dependency engine, scheduler, runtimes.

This package is the paper's primary contribution — see DESIGN.md for the
full inventory.  The stable public surface is re-exported here.
"""

from . import analysis
from .api import barrier, css_task, current_runtime, wait_on
from .config import RuntimeConfig
from .dependencies import DependencyError, DependencyTracker, TrackerConfig
from .graph import EdgeKind, TaskGraph
from .pragma import ParsedPragma, PragmaError, parse_expression, parse_pragma
from .recorder import RecordedProgram, RecordingRuntime, record_program
from .regions import Region, RegionError
from .renaming import AdapterRegistry, DataAdapter, Version, default_registry
from .representants import Representant, RepresentantTable
from .runtime import SmpssRuntime, TaskExecutionError
from .scheduler import CentralQueueScheduler, HotStealScheduler, SmpssScheduler
from .task import (
    Direction,
    InvocationError,
    ParamAccess,
    TaskDefinition,
    TaskInstance,
    TaskState,
)
from .tracing import (
    EventKind,
    NullTracer,
    ThreadLocalTracer,
    TraceEvent,
    Tracer,
)

__all__ = [
    "analysis",
    "barrier",
    "css_task",
    "current_runtime",
    "wait_on",
    "DependencyError",
    "DependencyTracker",
    "TrackerConfig",
    "EdgeKind",
    "TaskGraph",
    "ParsedPragma",
    "PragmaError",
    "parse_expression",
    "parse_pragma",
    "RecordedProgram",
    "RecordingRuntime",
    "record_program",
    "Region",
    "RegionError",
    "AdapterRegistry",
    "DataAdapter",
    "Version",
    "default_registry",
    "Representant",
    "RepresentantTable",
    "RuntimeConfig",
    "SmpssRuntime",
    "TaskExecutionError",
    "CentralQueueScheduler",
    "HotStealScheduler",
    "SmpssScheduler",
    "Direction",
    "InvocationError",
    "ParamAccess",
    "TaskDefinition",
    "TaskInstance",
    "TaskState",
    "EventKind",
    "NullTracer",
    "ThreadLocalTracer",
    "TraceEvent",
    "Tracer",
]
