"""The SMPSs ready-task scheduler (section III).

Shared verbatim by the threaded runtime and the discrete-event machine
simulator — both drive the exact same policy object, so the simulated
figures exercise the code path the real runtime uses.

Policy, quoting the paper:

* "There are two main ready lists, one for high priority tasks and one
  for normal priority tasks."
* "Each worker thread has its own ready list that contains tasks whose
  last input dependency has been removed by that thread."
* "Threads look up ready tasks first in the high priority list.  If it
  is empty, then they look up their own ready list.  If they do not
  succeed, they proceed to check out the main ready list.  In case of
  failure, they proceed to steal work from other threads in creation
  order starting from the next one."
* "Threads consume tasks from their own list in LIFO order, they get
  tasks from the main list in FIFO order, and they steal from other
  threads in FIFO order."

The LIFO-own / FIFO-steal combination walks the graph pseudo-depth-first
per thread and steals pseudo-breadth-first, keeping threads on disjoint
graph regions (cache-friendly) — the same discipline as Cilk, with a
locality motivation (section VII.D).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from .task import TaskInstance, TaskState

__all__ = [
    "SmpssScheduler",
    "SchedulerStats",
    "CentralQueueScheduler",
    "HotStealScheduler",
]


@dataclass
class SchedulerStats:
    pushed_new: int = 0
    pushed_unlocked: int = 0
    pops_high: int = 0
    pops_local: int = 0
    pops_main: int = 0
    steals: int = 0
    failed_pops: int = 0


class SmpssScheduler:
    """Ready lists + the section III selection policy.

    Thread index 0 is the main thread (which "also contributes to run
    tasks" while blocked); 1..num_workers are the worker threads.  The
    structure is *not* internally locked — the owning runtime serialises
    access (threaded backend) or is single-threaded (simulator).
    """

    def __init__(self, num_threads: int, tracer=None):
        if num_threads < 1:
            raise ValueError("need at least the main thread")
        self.num_threads = num_threads
        self.high: deque[TaskInstance] = deque()
        self.main: deque[TaskInstance] = deque()
        self.locals: list[deque[TaskInstance]] = [deque() for _ in range(num_threads)]
        self.stats = SchedulerStats()
        self.tracer = tracer
        self._ready_count = 0

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def push_new(self, task: TaskInstance) -> None:
        """A task added to the graph with no unsatisfied dependency.

        "Whenever a task is added without any input dependency, it is
        moved into the main ready list or the high priority list."
        """

        task.state = TaskState.READY
        if task.high_priority:
            self.high.append(task)
        else:
            self.main.append(task)
        self.stats.pushed_new += 1
        self._ready_count += 1
        if self.tracer:
            self.tracer.task_ready(task)

    def push_unlocked(self, task: TaskInstance, thread: int) -> None:
        """A task whose last dependency was removed by *thread*.

        High-priority tasks are "scheduled as soon as possible
        independently of any locality consideration", so they go to the
        global high list; others go to the unlocking thread's own list.
        """

        task.state = TaskState.READY
        if task.high_priority:
            self.high.append(task)
        else:
            self.locals[thread].append(task)
        self.stats.pushed_unlocked += 1
        self._ready_count += 1
        if self.tracer:
            self.tracer.task_ready(task)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def pop(self, thread: int) -> Optional[TaskInstance]:
        """Pick the next task for *thread* according to the policy."""

        if self._ready_count == 0:
            self.stats.failed_pops += 1
            return None
        task = self._select(thread)
        if task is None:
            self.stats.failed_pops += 1
            return None
        task.state = TaskState.RUNNING
        self._ready_count -= 1
        return task

    def _select(self, thread: int) -> Optional[TaskInstance]:
        if self.high:
            self.stats.pops_high += 1
            return self.high.popleft()  # FIFO
        own = self.locals[thread]
        if own:
            self.stats.pops_local += 1
            return own.pop()  # LIFO
        if self.main:
            self.stats.pops_main += 1
            return self.main.popleft()  # FIFO
        # Steal in creation order starting from the next thread, FIFO —
        # the task "that has spent most time on the queue and has more
        # probability of having most of its input data already evicted
        # from the cache" of the victim.
        for offset in range(1, self.num_threads):
            victim = (thread + offset) % self.num_threads
            queue = self.locals[victim]
            if queue:
                self.stats.steals += 1
                task = queue.popleft()
                if self.tracer:
                    self.tracer.steal(task, thief=thread, victim=victim)
                return task
        return None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def ready_count(self) -> int:
        return self._ready_count

    def has_ready(self) -> bool:
        return self._ready_count > 0


class HotStealScheduler(SmpssScheduler):
    """Ablation: steal from the LIFO (hot) end of the victim's deque.

    The paper steals in FIFO order "to minimize the effect on the cache
    of the victim thread by choosing the task that has spent most time
    on the queue".  This variant steals the task the victim would run
    next — maximising cache disturbance — so the benefit of the FIFO
    choice can be measured (``benchmarks/bench_ablations.py``).
    """

    def _select(self, thread: int):
        if self.high:
            self.stats.pops_high += 1
            return self.high.popleft()
        own = self.locals[thread]
        if own:
            self.stats.pops_local += 1
            return own.pop()
        if self.main:
            self.stats.pops_main += 1
            return self.main.popleft()
        for offset in range(1, self.num_threads):
            victim = (thread + offset) % self.num_threads
            queue = self.locals[victim]
            if queue:
                self.stats.steals += 1
                task = queue.pop()  # LIFO end: the victim's hot task
                if self.tracer:
                    self.tracer.steal(task, thief=thread, victim=victim)
                return task
        return None


class CentralQueueScheduler:
    """Ablation: a single global FIFO ready queue, no locality lists.

    Models the CellSs / SuperMatrix organisation the paper contrasts
    with in section VII ("SuperMatrix has a central ready queue", "CellSs
    has a unique queue and does not employ work-stealing").  Exposes the
    same interface as :class:`SmpssScheduler` so both runtimes accept it.
    """

    def __init__(self, num_threads: int, tracer=None):
        self.num_threads = num_threads
        self.high: deque[TaskInstance] = deque()
        self.queue: deque[TaskInstance] = deque()
        self.stats = SchedulerStats()
        self.tracer = tracer
        self._ready_count = 0

    def push_new(self, task: TaskInstance) -> None:
        task.state = TaskState.READY
        (self.high if task.high_priority else self.queue).append(task)
        self.stats.pushed_new += 1
        self._ready_count += 1
        if self.tracer:
            self.tracer.task_ready(task)

    def push_unlocked(self, task: TaskInstance, thread: int) -> None:
        task.state = TaskState.READY
        (self.high if task.high_priority else self.queue).append(task)
        self.stats.pushed_unlocked += 1
        self._ready_count += 1
        if self.tracer:
            self.tracer.task_ready(task)

    def pop(self, thread: int) -> Optional[TaskInstance]:
        source = self.high if self.high else self.queue
        if not source:
            self.stats.failed_pops += 1
            return None
        task = source.popleft()
        task.state = TaskState.RUNNING
        self._ready_count -= 1
        self.stats.pops_main += 1
        return task

    @property
    def ready_count(self) -> int:
        return self._ready_count

    def has_ready(self) -> bool:
        return self._ready_count > 0
