"""The SMPSs ready-task scheduler (section III).

Shared verbatim by the threaded runtime and the discrete-event machine
simulator — both drive the exact same policy object, so the simulated
figures exercise the code path the real runtime uses.

Policy, quoting the paper:

* "There are two main ready lists, one for high priority tasks and one
  for normal priority tasks."
* "Each worker thread has its own ready list that contains tasks whose
  last input dependency has been removed by that thread."
* "Threads look up ready tasks first in the high priority list.  If it
  is empty, then they look up their own ready list.  If they do not
  succeed, they proceed to check out the main ready list.  In case of
  failure, they proceed to steal work from other threads in creation
  order starting from the next one."
* "Threads consume tasks from their own list in LIFO order, they get
  tasks from the main list in FIFO order, and they steal from other
  threads in FIFO order."

The LIFO-own / FIFO-steal combination walks the graph pseudo-depth-first
per thread and steals pseudo-breadth-first, keeping threads on disjoint
graph regions (cache-friendly) — the same discipline as Cilk, with a
locality motivation (section VII.D).
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Optional

from .task import TaskInstance, TaskState

__all__ = [
    "SmpssScheduler",
    "SchedulerStats",
    "CentralQueueScheduler",
    "HotStealScheduler",
    "DispatchGate",
]


@dataclass
class SchedulerStats:
    pushed_new: int = 0
    pushed_unlocked: int = 0
    pops_high: int = 0
    pops_local: int = 0
    pops_main: int = 0
    steals: int = 0
    #: Pushes routed by the placement hook (``scheduler.placement``)
    #: to a specific thread's list instead of the policy default.
    placed: int = 0
    failed_pops: int = 0
    #: Pop attempts that ended in the steal scan finding every victim
    #: deque empty.  The fast empty-check in :meth:`SmpssScheduler.pop`
    #: stands in for that full scan, so its failures count here too.
    failed_steals: int = 0
    #: Per-thread breakdowns (thread index -> count).
    pops_by_thread: Counter = field(default_factory=Counter)
    steals_by_thief: Counter = field(default_factory=Counter)
    steals_by_victim: Counter = field(default_factory=Counter)
    failed_pops_by_thread: Counter = field(default_factory=Counter)

    def as_dict(self) -> dict:
        """Flat dict form, the shape :class:`~repro.obs.MetricsRegistry`
        ingests (satellite of the observability issue: stats travel
        through the registry, not ad-hoc dataclass reads)."""

        return {
            "pushed_new": self.pushed_new,
            "pushed_unlocked": self.pushed_unlocked,
            "pops_high": self.pops_high,
            "pops_local": self.pops_local,
            "pops_main": self.pops_main,
            "steals": self.steals,
            "placed": self.placed,
            "failed_pops": self.failed_pops,
            "failed_steals": self.failed_steals,
            "pops_by_thread": dict(self.pops_by_thread),
            "steals_by_thief": dict(self.steals_by_thief),
            "steals_by_victim": dict(self.steals_by_victim),
            "failed_pops_by_thread": dict(self.failed_pops_by_thread),
        }


class DispatchGate:
    """Debugger control over the worker dispatch point (``repro.live``).

    The gate sits between "a ready task exists" and "a thread runs it":
    :meth:`SmpssScheduler.pop` consults it *under the scheduler lock*
    before committing a selection.  While paused, ``pop`` returns
    ``None`` and threads fall into their normal empty-queue parking on
    the runtime's condition variables — paused workers block, they do
    not spin.  ``step(n)`` grants *n* dispatch tickets; breakpoints
    (by task-type name or task id) hold a matching task at the boundary
    *before* it starts and pause the whole runtime.

    Locking contract: :meth:`admit` and :meth:`should_hold` are called
    by the scheduler with the runtime's scheduler lock already held and
    therefore touch plain fields only.  The control methods
    (:meth:`pause` / :meth:`resume` / :meth:`step` / breakpoint edits)
    are for *other* threads — the live control server, a debugger REPL —
    and take that same lock themselves, waking parked threads through
    the condition variables the runtime registered via :meth:`bind`.
    """

    def __init__(self):
        self.paused = False
        #: "Any control is active" — ``paused or breakpoints exist``.
        #: The gate only *occupies a scheduler's ``gate`` slot while
        #: engaged* (see :meth:`install`): a live session whose gate is
        #: wide open leaves ``scheduler.gate`` as ``None``, so dispatch
        #: pays exactly the ``live=False`` cost — one attribute load
        #: and a ``None`` check.  ``should_hold`` setting ``paused``
        #: never changes this (a hold requires breakpoints, so the gate
        #: is already engaged and installed).
        self.engaged = False
        self._schedulers: list = []
        #: Dispatch tickets granted by :meth:`step` (consumed by
        #: :meth:`admit` while paused).
        self.step_budget = 0
        self.break_names: set[str] = set()
        self.break_ids: set[int] = set()
        #: Task ids already held once: the next dispatch of that very
        #: instance passes the breakpoint (step/resume run *through* it
        #: rather than re-holding forever).
        self._skip_ids: set[int] = set()
        #: Breakpoint holds so far (monotonic; a "hits" counter).
        self.holds = 0
        #: Optional ``fn(task)`` invoked on a breakpoint hold, *under
        #: the scheduler lock* — must be fast and lock-free (the live
        #: session uses it to enqueue a "paused at breakpoint" delta).
        self.on_hold = None
        self._lock = threading.Lock()
        self._cvs: tuple = ()

    def bind(self, lock, *cvs) -> None:
        """Adopt the runtime's scheduler lock and the condition
        variables parked threads wait on (notified on resume/step)."""

        self._lock = lock
        self._cvs = tuple(cv for cv in cvs if cv is not None)

    def install(self, scheduler) -> None:
        """Manage *scheduler*'s ``gate`` slot from now on.

        The slot holds this gate only while :attr:`engaged`; control
        methods flip it under the bound lock, so workers mid-``pop``
        never observe a half-configured gate.  A gate assigned to
        ``scheduler.gate`` directly (without ``install``) also works —
        it is simply consulted on every pop, engaged or not.
        """

        self._schedulers.append(scheduler)
        scheduler.gate = self if self.engaged else None

    def _sync_installed(self) -> None:
        gate = self if self.engaged else None
        for scheduler in self._schedulers:
            scheduler.gate = gate

    # -- scheduler side (lock already held) -----------------------------
    def admit(self) -> bool:
        """May the calling thread dispatch one task right now?"""

        if not self.paused:
            return True
        if self.step_budget > 0:
            self.step_budget -= 1
            return True
        return False

    def should_hold(self, task) -> bool:
        """Breakpoint check for a just-selected *task*.

        Returns ``True`` when the task must be held at the boundary (the
        caller requeues it at the head of the ready lists); as a side
        effect the runtime pauses.  A task that was already held once is
        let through (and forgotten), so a subsequent ``step``/``resume``
        executes it instead of re-holding.
        """

        if not self.break_names and not self.break_ids:
            return False
        task_id = task.task_id
        if task_id in self._skip_ids:
            self._skip_ids.discard(task_id)
            return False
        if task.name in self.break_names or task_id in self.break_ids:
            self._skip_ids.add(task_id)
            self.paused = True
            self.holds += 1
            on_hold = self.on_hold
            if on_hold is not None:
                on_hold(task)
            return True
        return False

    # -- control side (takes the lock itself) ---------------------------
    def _notify(self, n: Optional[int] = None) -> None:
        for cv in self._cvs:
            if n is None:
                cv.notify_all()
            else:
                cv.notify(n)

    def _recompute_engaged(self) -> None:
        self.engaged = bool(
            self.paused or self.break_names or self.break_ids
        )
        self._sync_installed()

    def pause(self) -> None:
        with self._lock:
            self.paused = True
            self.engaged = True
            self._sync_installed()

    def resume(self) -> None:
        """Drop the gate: clear pause and any unused step budget."""

        with self._lock:
            self.paused = False
            self.step_budget = 0
            self._recompute_engaged()
            self._notify()

    def step(self, n: int = 1) -> None:
        """Grant *n* dispatch tickets (pauses first if free-running).

        A ticket is consumed by the dispatch *attempt* — a breakpoint
        hold eats one, so ``step(5)`` at a fresh breakpoint runs the
        held task plus three more.
        """

        if n < 1:
            raise ValueError("step(n) needs n >= 1")
        with self._lock:
            self.paused = True
            self.engaged = True
            self._sync_installed()
            self.step_budget += n
            self._notify(n)

    def add_break(self, name: Optional[str] = None,
                  task_id: Optional[int] = None) -> None:
        if name is None and task_id is None:
            raise ValueError("breakpoint needs a task-type name or a task id")
        with self._lock:
            if name is not None:
                self.break_names.add(name)
            if task_id is not None:
                self.break_ids.add(int(task_id))
            self.engaged = True
            self._sync_installed()

    def remove_break(self, name: Optional[str] = None,
                     task_id: Optional[int] = None) -> None:
        with self._lock:
            if name is not None:
                self.break_names.discard(name)
            if task_id is not None:
                self.break_ids.discard(int(task_id))
            self._recompute_engaged()

    def clear_breaks(self) -> None:
        with self._lock:
            self.break_names.clear()
            self.break_ids.clear()
            self._skip_ids.clear()
            self._recompute_engaged()

    def state(self) -> dict:
        """Plain-data control state (for snapshots; lock-free read of
        scalar fields, consistent enough for display)."""

        return {
            "paused": self.paused,
            "step_budget": self.step_budget,
            "break_names": sorted(self.break_names),
            "break_ids": sorted(self.break_ids),
            "holds": self.holds,
        }


class SmpssScheduler:
    """Ready lists + the section III selection policy.

    Thread index 0 is the main thread (which "also contributes to run
    tasks" while blocked); 1..num_workers are the worker threads.  The
    structure is *not* internally locked — the owning runtime serialises
    access (threaded backend) or is single-threaded (simulator).
    """

    def __init__(self, num_threads: int, tracer=None):
        if num_threads < 1:
            raise ValueError("need at least the main thread")
        self.num_threads = num_threads
        self.high: deque[TaskInstance] = deque()
        self.main: deque[TaskInstance] = deque()
        self.locals: list[deque[TaskInstance]] = [deque() for _ in range(num_threads)]
        self.stats = SchedulerStats()
        # Normalise falsy tracers (NullTracer) to None: the push/pop hot
        # path then pays a plain None check instead of a Python-level
        # __bool__ call per operation (~5% on this path).
        self.tracer = tracer if tracer else None
        #: Optional :class:`DispatchGate` (``repro.live``); ``None`` —
        #: the default — costs one attribute load per pop.
        self.gate: Optional[DispatchGate] = None
        #: Optional locality hook ``fn(task) -> thread_index | None``
        #: (``repro.dist`` installs one that prefers the node already
        #: holding the most input bytes).  Consulted on every normal-
        #: priority push *under the owner's lock*; returning a thread
        #: index routes the task onto that thread's own list, ``None``
        #: keeps the paper's default (main list / unlocking thread).
        #: High-priority tasks are never placed — the paper schedules
        #: them "independently of any locality consideration".
        self.placement = None
        self._ready_count = 0

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def push_new(self, task: TaskInstance) -> None:
        """A task added to the graph with no unsatisfied dependency.

        "Whenever a task is added without any input dependency, it is
        moved into the main ready list or the high priority list."
        """

        task.state = TaskState.READY
        if task.high_priority:
            self.high.append(task)
        else:
            target = None
            if self.placement is not None:
                target = self.placement(task)
            if target is None:
                self.main.append(task)
            else:
                self.locals[target].append(task)
                self.stats.placed += 1
        self.stats.pushed_new += 1
        self._ready_count += 1
        if self.tracer:
            self.tracer.task_ready(task)

    def push_unlocked(self, task: TaskInstance, thread: int) -> None:
        """A task whose last dependency was removed by *thread*.

        High-priority tasks are "scheduled as soon as possible
        independently of any locality consideration", so they go to the
        global high list; others go to the unlocking thread's own list.
        """

        task.state = TaskState.READY
        if task.high_priority:
            self.high.append(task)
        else:
            target = None
            if self.placement is not None:
                target = self.placement(task)
            if target is None:
                self.locals[thread].append(task)
            else:
                self.locals[target].append(task)
                if target != thread:
                    self.stats.placed += 1
        self.stats.pushed_unlocked += 1
        self._ready_count += 1
        if self.tracer:
            self.tracer.task_ready(task, thread)

    def push_ready_batch(self, tasks, thread: int) -> None:
        """All tasks released by one completion on *thread*, together.

        Semantically ``push_unlocked`` per task; a single entry point
        lets the threaded runtime insert a whole completion's worth of
        unlocked successors under one scheduler-lock acquisition and
        pairs with its batched ``notify(len(tasks))`` wakeup.
        """

        own = self.locals[thread]
        high = self.high
        stats = self.stats
        tracer = self.tracer
        placement = self.placement
        for task in tasks:
            task.state = TaskState.READY
            if task.high_priority:
                high.append(task)
            elif placement is None:
                own.append(task)
            else:
                target = placement(task)
                if target is None:
                    own.append(task)
                else:
                    self.locals[target].append(task)
                    if target != thread:
                        stats.placed += 1
            if tracer:
                tracer.task_ready(task, thread)
        stats.pushed_unlocked += len(tasks)
        self._ready_count += len(tasks)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def pop(self, thread: int) -> Optional[TaskInstance]:
        """Pick the next task for *thread* according to the policy."""

        if self._ready_count == 0:
            self.stats.failed_pops += 1
            self.stats.failed_pops_by_thread[thread] += 1
            # Every list being empty means the steal scan would have
            # come up dry as well — the fast path subsumes it.
            self.stats.failed_steals += 1
            return None
        gate = self.gate
        # An installed gate occupies this slot only while engaged
        # (DispatchGate.install), so a live session with nothing
        # paused/held costs exactly one None check here — the
        # microbench pins it at <5% over live=False.
        if gate is not None:
            if not gate.admit():
                # Paused: no stats — this is a debugger hold, not a
                # scheduling failure.  The caller parks on its cv.
                return None
            task = self._select(thread)
            if task is not None and gate.should_hold(task):
                # Held at the boundary: requeue at the head of the high
                # list so the held task is the next dispatch once the
                # user steps/resumes.  (The per-list pop counter above
                # already counted the aborted selection — a known,
                # documented skew while a debugger holds tasks.)
                self.high.appendleft(task)
                return None
        else:
            task = self._select(thread)
        if task is None:
            self.stats.failed_pops += 1
            self.stats.failed_pops_by_thread[thread] += 1
            return None
        task.state = TaskState.RUNNING
        self._ready_count -= 1
        self.stats.pops_by_thread[thread] += 1
        return task

    def _select(self, thread: int) -> Optional[TaskInstance]:
        if self.high:
            self.stats.pops_high += 1
            return self.high.popleft()  # FIFO
        own = self.locals[thread]
        if own:
            self.stats.pops_local += 1
            return own.pop()  # LIFO
        if self.main:
            self.stats.pops_main += 1
            return self.main.popleft()  # FIFO
        # Steal in creation order starting from the next thread, FIFO —
        # the task "that has spent most time on the queue and has more
        # probability of having most of its input data already evicted
        # from the cache" of the victim.
        for offset in range(1, self.num_threads):
            victim = (thread + offset) % self.num_threads
            queue = self.locals[victim]
            if queue:
                self.stats.steals += 1
                self.stats.steals_by_thief[thread] += 1
                self.stats.steals_by_victim[victim] += 1
                task = queue.popleft()
                if self.tracer:
                    self.tracer.steal(task, thief=thread, victim=victim)
                return task
        self.stats.failed_steals += 1
        return None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def ready_count(self) -> int:
        return self._ready_count

    def has_ready(self) -> bool:
        return self._ready_count > 0

    def queue_depths(self) -> dict:
        """Instantaneous per-list depths (read under the owner's lock).

        One source of truth for both the live dashboard snapshots and
        the ``scheduler.*_depth`` gauges the runtime publishes.
        """

        return {
            "high": len(self.high),
            "main": len(self.main),
            "locals": [len(queue) for queue in self.locals],
        }

    def queue_imbalance(self) -> tuple[int, float]:
        """``(deepest_local_depth, its_share_of_all_ready)``.

        The health watchdog's imbalance signal: a single per-thread LIFO
        hoarding most of the ready work while other threads would have
        to steal one-by-one.  Racy read (the watchdog samples without
        the scheduler lock); both values are display/diagnosis numbers,
        never control flow inside the scheduler.
        """

        total = self._ready_count
        if total <= 0 or not self.locals:
            return (0, 0.0)
        deepest = max(len(queue) for queue in self.locals)
        return (deepest, deepest / max(1, total))


class HotStealScheduler(SmpssScheduler):
    """Ablation: steal from the LIFO (hot) end of the victim's deque.

    The paper steals in FIFO order "to minimize the effect on the cache
    of the victim thread by choosing the task that has spent most time
    on the queue".  This variant steals the task the victim would run
    next — maximising cache disturbance — so the benefit of the FIFO
    choice can be measured (``benchmarks/bench_ablations.py``).
    """

    def _select(self, thread: int):
        if self.high:
            self.stats.pops_high += 1
            return self.high.popleft()
        own = self.locals[thread]
        if own:
            self.stats.pops_local += 1
            return own.pop()
        if self.main:
            self.stats.pops_main += 1
            return self.main.popleft()
        for offset in range(1, self.num_threads):
            victim = (thread + offset) % self.num_threads
            queue = self.locals[victim]
            if queue:
                self.stats.steals += 1
                self.stats.steals_by_thief[thread] += 1
                self.stats.steals_by_victim[victim] += 1
                task = queue.pop()  # LIFO end: the victim's hot task
                if self.tracer:
                    self.tracer.steal(task, thief=thread, victim=victim)
                return task
        self.stats.failed_steals += 1
        return None


class CentralQueueScheduler:
    """Ablation: a single global FIFO ready queue, no locality lists.

    Models the CellSs / SuperMatrix organisation the paper contrasts
    with in section VII ("SuperMatrix has a central ready queue", "CellSs
    has a unique queue and does not employ work-stealing").  Exposes the
    same interface as :class:`SmpssScheduler` so both runtimes accept it.
    """

    def __init__(self, num_threads: int, tracer=None):
        self.num_threads = num_threads
        self.high: deque[TaskInstance] = deque()
        self.queue: deque[TaskInstance] = deque()
        self.stats = SchedulerStats()
        self.tracer = tracer if tracer else None  # see SmpssScheduler
        self.gate: Optional[DispatchGate] = None  # see SmpssScheduler
        self._ready_count = 0

    def push_new(self, task: TaskInstance) -> None:
        task.state = TaskState.READY
        (self.high if task.high_priority else self.queue).append(task)
        self.stats.pushed_new += 1
        self._ready_count += 1
        if self.tracer:
            self.tracer.task_ready(task)

    def push_unlocked(self, task: TaskInstance, thread: int) -> None:
        task.state = TaskState.READY
        (self.high if task.high_priority else self.queue).append(task)
        self.stats.pushed_unlocked += 1
        self._ready_count += 1
        if self.tracer:
            self.tracer.task_ready(task, thread)

    def push_ready_batch(self, tasks, thread: int) -> None:
        """Interface parity with :meth:`SmpssScheduler.push_ready_batch`."""

        for task in tasks:
            self.push_unlocked(task, thread)

    def pop(self, thread: int) -> Optional[TaskInstance]:
        source = self.high if self.high else self.queue
        if not source:
            self.stats.failed_pops += 1
            self.stats.failed_pops_by_thread[thread] += 1
            return None
        gate = self.gate
        if gate is not None:  # engaged-only slot; see SmpssScheduler.pop
            if not gate.admit():
                return None
            task = source.popleft()
            if gate.should_hold(task):
                self.high.appendleft(task)  # next dispatch; see SmpssScheduler
                return None
        else:
            task = source.popleft()
        task.state = TaskState.RUNNING
        self._ready_count -= 1
        self.stats.pops_main += 1
        self.stats.pops_by_thread[thread] += 1
        return task

    @property
    def ready_count(self) -> int:
        return self._ready_count

    def has_ready(self) -> bool:
        return self._ready_count > 0

    def queue_depths(self) -> dict:
        """See :meth:`SmpssScheduler.queue_depths` (no per-thread lists)."""

        return {
            "high": len(self.high),
            "main": len(self.queue),
            "locals": [],
        }

    def queue_imbalance(self) -> tuple[int, float]:
        """A central queue cannot be imbalanced; interface parity."""

        return (0, 0.0)
