"""Binding a call site to a task declaration.

Turns ``(TaskDefinition, args, kwargs)`` into the flat list of
:class:`~repro.core.task.ParamAccess` records the dependency engine
consumes — evaluating dimension specifiers and array-region bounds
against the actual argument values, exactly when the paper's runtime
would ("the runtime takes the memory address, size and directionality
of each parameter at each task invocation").

The per-call work is precompiled: :func:`plan_for` builds (once per
:class:`TaskDefinition`) an :class:`InvocationPlan` holding everything
that does not depend on argument *values* — parameter order, per-clause
direction/position tuples, the defaults tail for short positional
calls, and whether any clause needs expression evaluation at all.  The
common task shape (plain positional call, no dimension or region
specifiers) then instantiates with two dict builds and zero ``inspect``
machinery — this is the paper's per-``task_add`` overhead, the cost
that caps submission throughput for fine-grained applications.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .pragma import PragmaError
from .regions import FULL_DIM, Region, RegionError
from .task import InvocationError, ParamAccess, TaskDefinition, TaskInstance

__all__ = ["InvocationPlan", "build_accesses", "instantiate", "plan_for"]


def _expression_env(arguments: dict, constants: Optional[dict]) -> dict:
    env = dict(constants) if constants else {}
    for name, value in arguments.items():
        if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
            env[name] = int(value)
    return env


def _evaluate_dims(spec, env: dict) -> list[Optional[int]]:
    extents: list[Optional[int]] = []
    for dim in spec.dims:
        try:
            extents.append(dim.evaluate(env))
        except PragmaError:
            extents.append(None)  # references an unknown constant: skip
    return extents


def _shape_extents(value: Any) -> tuple:
    if isinstance(value, np.ndarray):
        return value.shape
    try:
        return (len(value),)
    except TypeError:
        return ()


def build_accesses(
    definition: TaskDefinition,
    arguments: dict,
    constants: Optional[dict] = None,
) -> list[ParamAccess]:
    """Produce one :class:`ParamAccess` per clause appearance."""

    # Expression evaluation (dimension/region bounds) is only needed
    # when the pragma actually uses it — the common tile tasks skip it.
    env = (
        _expression_env(arguments, constants)
        if definition.needs_expressions
        else None
    )
    positions = definition.positions
    accesses: list[ParamAccess] = []
    for spec in definition.params:
        if spec.name not in arguments:
            raise InvocationError(
                f"task {definition.name!r}: declared parameter {spec.name!r} "
                f"missing from the call"
            )
        value = arguments[spec.name]
        if spec.dims and isinstance(value, np.ndarray):
            _check_dims(definition, spec, value, env)
        region = None
        if spec.regions:
            region = _resolve_region(definition, spec, value, env)
        accesses.append(
            ParamAccess(
                name=spec.name,
                direction=spec.direction,
                value=value,
                region=region,
                position=positions.get(spec.name, -1),
            )
        )
    return accesses


def _check_dims(definition, spec, value: np.ndarray, env: Optional[dict]) -> None:
    """Validate declared dimension specifiers against the real array.

    The paper's runtime "requires its size for proper operation";
    evaluable mismatched dimensions are programming errors we can catch
    at invocation time.  Dimensions referencing unknown constants are
    skipped.
    """

    declared = _evaluate_dims(spec, env or {})
    if any(d is None for d in declared):
        return
    if len(declared) != value.ndim or tuple(declared) != value.shape:
        raise InvocationError(
            f"task {definition.name!r}: parameter {spec.name!r} declared "
            f"as {spec} (shape {tuple(declared)}) but the argument has "
            f"shape {value.shape}"
        )


def _resolve_region(definition, spec, value, env) -> Region:
    if env is None:
        env = {}
    declared = _evaluate_dims(spec, env)
    shape = _shape_extents(value)
    intervals = []
    for d, rspec in enumerate(spec.regions):
        extent: Optional[int] = None
        if d < len(declared) and declared[d] is not None:
            extent = declared[d]
        elif d < len(shape):
            extent = int(shape[d])
        try:
            lo, hi = rspec.bounds(env, extent)
        except PragmaError as exc:
            raise InvocationError(
                f"task {definition.name!r}: cannot resolve region of "
                f"parameter {spec.name!r}: {exc}"
            ) from exc
        if (lo, hi) != FULL_DIM and extent is not None and hi >= extent:
            raise InvocationError(
                f"task {definition.name!r}: region {{{lo}..{hi}}} of "
                f"parameter {spec.name!r} exceeds its extent {extent}"
            )
        intervals.append((lo, hi))
    try:
        return Region(tuple(intervals))
    except RegionError as exc:
        raise InvocationError(
            f"task {definition.name!r}: invalid region for parameter "
            f"{spec.name!r}: {exc}"
        ) from exc


class InvocationPlan:
    """Precompiled call-site binding for one :class:`TaskDefinition`.

    Everything derivable from the declaration alone is computed here,
    once: ordered parameter names, the ``(name, direction, position)``
    triple of every clause appearance, the defaults tail, and whether
    any clause carries dimension/region specifiers (the only case that
    needs expression evaluation against argument values).
    """

    __slots__ = (
        "definition",
        "param_names",
        "n_params",
        "n_required",
        "defaults_tail",
        "access_specs",
        "simple",
        "high_priority",
        "own_constants",
    )

    def __init__(self, definition: TaskDefinition):
        self.definition = definition
        self.param_names = definition.param_names
        self.n_params = len(definition.param_names)
        positions = definition.positions
        # Defaults tail: positional calls that omit trailing defaulted
        # parameters bind without touching inspect.Signature.bind.
        defaults: list = []
        for name, param in definition.signature.parameters.items():
            if param.default is not param.empty:
                defaults.append(param.default)
            elif defaults:
                defaults.clear()  # non-default after default: signature
                break             # error at def time; stay conservative
        self.defaults_tail = tuple(defaults)
        self.n_required = self.n_params - len(self.defaults_tail)
        self.access_specs = tuple(
            (spec.name, spec.direction, positions.get(spec.name, -1))
            for spec in definition.params
        )
        self.simple = not definition.needs_expressions
        self.high_priority = definition.high_priority
        self.own_constants = getattr(definition, "constants", None) or None

    def instantiate(
        self, args: tuple, kwargs: dict, constants: Optional[dict] = None
    ) -> TaskInstance:
        """Bind + build accesses + create the dynamic task instance."""

        n = len(args)
        if not kwargs and self.n_required <= n <= self.n_params:
            if n < self.n_params:
                args = args + self.defaults_tail[n - self.n_required:]
            if self.simple:
                # The hot shape: accesses/arguments derive lazily from
                # the positional value tuple (TaskInstance.call_values);
                # nothing else is allocated per submission.
                return TaskInstance(
                    definition=self.definition,
                    accesses=None,
                    arguments=None,
                    high_priority=self.high_priority,
                    call_values=args,
                )
            arguments = dict(zip(self.param_names, args))
        else:
            arguments = self.definition.bind_dict(args, kwargs)
            if self.simple:
                return TaskInstance(
                    definition=self.definition,
                    accesses=None,
                    arguments=arguments,
                    high_priority=self.high_priority,
                    call_values=tuple(
                        arguments[name] for name in self.param_names
                    ),
                )
        # Dimension/region specifiers present: evaluate expressions
        # against the actual argument values (the paper's section V.A).
        if constants or self.own_constants:
            merged = dict(constants) if constants else {}
            if self.own_constants:
                merged.update(self.own_constants)
        else:
            merged = None
        accesses = build_accesses(self.definition, arguments, merged)
        return TaskInstance(
            definition=self.definition,
            accesses=accesses,
            arguments=arguments,
            high_priority=self.high_priority,
        )


def plan_for(definition: TaskDefinition) -> InvocationPlan:
    """The (cached) precompiled invocation plan of *definition*."""

    plan = definition._invocation_plan
    if plan is None:
        # Benign race: two threads building the same plan produce
        # equivalent objects; last store wins.
        plan = definition._invocation_plan = InvocationPlan(definition)
    return plan


def instantiate(
    definition: TaskDefinition,
    args: tuple,
    kwargs: dict,
    constants: Optional[dict] = None,
) -> TaskInstance:
    """Bind + build accesses + create the dynamic task instance.

    Thin wrapper over the definition's precompiled
    :class:`InvocationPlan`; every runtime front-end funnels through
    the same plan, so they all share the fast path.
    """

    return plan_for(definition).instantiate(args, kwargs, constants)


def resolve_call_values(task: TaskInstance, sanitizer=None) -> list:
    """Concrete argument values for executing *task*.

    Whole-object tracked parameters resolve to their version's storage
    (which is where renaming redirects reads and writes); everything
    else (scalars, opaque values, region-mode objects whose storage is
    always the user's buffer) resolves to the captured value.  When a
    *sanitizer* is active, the resolved values pass through its
    :meth:`~repro.check.sanitize.Sanitizer.wrap` (read-only guards on
    non-written parameters, write tracking on the rest).
    """

    definition = task.definition
    call_values = task.call_values
    if call_values is not None:
        values = list(call_values)
    else:
        arguments = task.arguments
        values = [arguments[name] for name in definition.param_names]
    positions = definition.positions
    for name, version in task.reads:
        if not version.datum.region_mode:
            values[positions[name]] = version.resolve_storage()
    for name, version in task.writes:
        if not version.datum.region_mode:
            values[positions[name]] = version.resolve_storage()
    if sanitizer is not None:
        values = sanitizer.wrap(task, values)
    return values
