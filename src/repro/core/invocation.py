"""Binding a call site to a task declaration.

Turns ``(TaskDefinition, args, kwargs)`` into the flat list of
:class:`~repro.core.task.ParamAccess` records the dependency engine
consumes — evaluating dimension specifiers and array-region bounds
against the actual argument values, exactly when the paper's runtime
would ("the runtime takes the memory address, size and directionality
of each parameter at each task invocation").
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .pragma import PragmaError
from .regions import FULL_DIM, Region, RegionError
from .task import InvocationError, ParamAccess, TaskDefinition, TaskInstance

__all__ = ["build_accesses", "instantiate"]


def _expression_env(arguments: dict, constants: Optional[dict]) -> dict:
    env = dict(constants) if constants else {}
    for name, value in arguments.items():
        if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
            env[name] = int(value)
    return env


def _evaluate_dims(spec, env: dict) -> list[Optional[int]]:
    extents: list[Optional[int]] = []
    for dim in spec.dims:
        try:
            extents.append(dim.evaluate(env))
        except PragmaError:
            extents.append(None)  # references an unknown constant: skip
    return extents


def _shape_extents(value: Any) -> tuple:
    if isinstance(value, np.ndarray):
        return value.shape
    try:
        return (len(value),)
    except TypeError:
        return ()


def build_accesses(
    definition: TaskDefinition,
    arguments: dict,
    constants: Optional[dict] = None,
) -> list[ParamAccess]:
    """Produce one :class:`ParamAccess` per clause appearance."""

    # Expression evaluation (dimension/region bounds) is only needed
    # when the pragma actually uses it — the common tile tasks skip it.
    env = (
        _expression_env(arguments, constants)
        if definition.needs_expressions
        else None
    )
    positions = definition.positions
    accesses: list[ParamAccess] = []
    for spec in definition.params:
        if spec.name not in arguments:
            raise InvocationError(
                f"task {definition.name!r}: declared parameter {spec.name!r} "
                f"missing from the call"
            )
        value = arguments[spec.name]
        if spec.dims and isinstance(value, np.ndarray):
            _check_dims(definition, spec, value, env)
        region = None
        if spec.regions:
            region = _resolve_region(definition, spec, value, env)
        accesses.append(
            ParamAccess(
                name=spec.name,
                direction=spec.direction,
                value=value,
                region=region,
                position=positions.get(spec.name, -1),
            )
        )
    return accesses


def _check_dims(definition, spec, value: np.ndarray, env: Optional[dict]) -> None:
    """Validate declared dimension specifiers against the real array.

    The paper's runtime "requires its size for proper operation";
    evaluable mismatched dimensions are programming errors we can catch
    at invocation time.  Dimensions referencing unknown constants are
    skipped.
    """

    declared = _evaluate_dims(spec, env or {})
    if any(d is None for d in declared):
        return
    if len(declared) != value.ndim or tuple(declared) != value.shape:
        raise InvocationError(
            f"task {definition.name!r}: parameter {spec.name!r} declared "
            f"as {spec} (shape {tuple(declared)}) but the argument has "
            f"shape {value.shape}"
        )


def _resolve_region(definition, spec, value, env) -> Region:
    if env is None:
        env = {}
    declared = _evaluate_dims(spec, env)
    shape = _shape_extents(value)
    intervals = []
    for d, rspec in enumerate(spec.regions):
        extent: Optional[int] = None
        if d < len(declared) and declared[d] is not None:
            extent = declared[d]
        elif d < len(shape):
            extent = int(shape[d])
        try:
            lo, hi = rspec.bounds(env, extent)
        except PragmaError as exc:
            raise InvocationError(
                f"task {definition.name!r}: cannot resolve region of "
                f"parameter {spec.name!r}: {exc}"
            ) from exc
        if (lo, hi) != FULL_DIM and extent is not None and hi >= extent:
            raise InvocationError(
                f"task {definition.name!r}: region {{{lo}..{hi}}} of "
                f"parameter {spec.name!r} exceeds its extent {extent}"
            )
        intervals.append((lo, hi))
    try:
        return Region(tuple(intervals))
    except RegionError as exc:
        raise InvocationError(
            f"task {definition.name!r}: invalid region for parameter "
            f"{spec.name!r}: {exc}"
        ) from exc


def instantiate(
    definition: TaskDefinition,
    args: tuple,
    kwargs: dict,
    constants: Optional[dict] = None,
) -> TaskInstance:
    """Bind + build accesses + create the dynamic task instance."""

    arguments = definition.bind_dict(args, kwargs)
    if constants or getattr(definition, "constants", None):
        merged = dict(constants) if constants else {}
        merged.update(getattr(definition, "constants", None) or {})
    else:
        merged = None
    accesses = build_accesses(definition, arguments, merged)
    return TaskInstance(
        definition=definition,
        accesses=accesses,
        arguments=arguments,
        high_priority=definition.high_priority,
    )


def resolve_call_values(task: TaskInstance, sanitizer=None) -> list:
    """Concrete argument values for executing *task*.

    Whole-object tracked parameters resolve to their version's storage
    (which is where renaming redirects reads and writes); everything
    else (scalars, opaque values, region-mode objects whose storage is
    always the user's buffer) resolves to the captured value.  When a
    *sanitizer* is active, the resolved values pass through its
    :meth:`~repro.check.sanitize.Sanitizer.wrap` (read-only guards on
    non-written parameters, write tracking on the rest).
    """

    resolved = dict(task.arguments)
    for name, version in task.reads:
        if version.datum.region_mode:
            continue
        resolved[name] = version.resolve_storage()
    for name, version in task.writes:
        if version.datum.region_mode:
            continue
        resolved[name] = version.resolve_storage()
    values = [resolved[name] for name in task.definition.param_names]
    if sanitizer is not None:
        values = sanitizer.wrap(task, values)
    return values
