"""Recording runtime: build graphs + submission traces without threads.

Two uses:

* **Graph inspection** — reproduce Figure 5 (the 6x6 Cholesky DAG) by
  recording the task stream of the annotated program and keeping the
  full graph.
* **Simulation input** — the discrete-event simulator replays the
  recorded submission sequence, charging the main thread the per-task
  analysis overhead and releasing nodes into the live scheduler at the
  right virtual time (this is what produces the small-block runtime-
  overhead wall in Figure 8).

Dependency analysis here assumes the worst-case (and, for a fast main
thread, typical) race: no task has completed when a later task is
analysed, so every hazard is live — all true edges are recorded and
every WAR/WAW is renamed, exactly the graph the real runtime converges
to when the submission front runs ahead of execution.

``execute="eager"`` additionally runs every task body immediately at
submission (sequential execution with full dependency bookkeeping) so
programs whose control flow reads task results (e.g. LU pivoting)
record correctly — and so recording doubles as a correctness oracle.
``execute="skip"`` records topology only, allowing hundred-thousand-task
graphs (the paper's 374,272-task Cholesky) to be built in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Literal, Optional

from . import api as _api
from .config import RuntimeConfig, resolve_config
from .dependencies import DependencyTracker, TrackerConfig
from .graph import TaskGraph
from .invocation import instantiate, resolve_call_values
from .task import TaskInstance, reset_task_ids
from .tracing import NullTracer

__all__ = [
    "RecordedProgram",
    "RecordingRuntime",
    "record_program",
    "LoadedRecording",
    "load_recording",
]


@dataclass
class RecordedProgram:
    """The outcome of recording one annotated program."""

    graph: TaskGraph
    #: Submission stream: ("task", TaskInstance) | ("barrier",) |
    #: ("wait", TaskInstance)
    events: list[tuple] = field(default_factory=list)
    #: Analysis-side aggregates (per-task analysis time, renames);
    #: populated by :meth:`RecordingRuntime.finish`.
    metrics: object = None

    @property
    def tasks(self) -> list[TaskInstance]:
        return [e[1] for e in self.events if e[0] == "task"]

    @property
    def task_count(self) -> int:
        return sum(1 for e in self.events if e[0] == "task")

    def critical_path(self, weight=None) -> list[TaskInstance]:
        """Tasks on the longest path (unit weights by default)."""

        return self.graph.critical_path_tasks(weight)

    def to_dot(self, weight=None, highlight_critical: bool = True) -> str:
        """Graphviz text with the critical path highlighted — the
        TEMANEJO-style debugging view of the recorded DAG."""

        from ..obs.export import graph_to_dot

        return graph_to_dot(
            self.graph, weight=weight, highlight_critical=highlight_critical
        )

    # -- persistence (time-travel replay input) -------------------------
    def to_json_dict(self) -> dict:
        """Topology + submission stream as plain data.

        Task bodies and argument values are *not* serialised — a saved
        recording replays scheduling (``python -m repro.live replay``),
        it does not re-execute computation.  Requires ``keep_graph``
        (the default for recordings): a retired graph has no edges left
        to save.
        """

        tasks = [
            [task.task_id, task.name, int(task.high_priority)]
            for task in self.graph
        ]
        stream: list[list] = []
        for event in self.events:
            if event[0] == "barrier":
                stream.append(["barrier"])
            else:  # ("task", t) | ("wait", t)
                stream.append([event[0], event[1].task_id])
        return {
            "format": "repro.recording",
            "version": 1,
            "tasks": tasks,
            "edges": [list(edge) for edge in self.graph.edges()],
            "stream": stream,
        }

    def save(self, path: str) -> None:
        """Write :meth:`to_json_dict` as JSON to *path*."""

        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json_dict(), handle)


@dataclass
class LoadedRecording:
    """A recording read back from disk (topology only; see
    :meth:`RecordedProgram.to_json_dict`)."""

    #: ``[task_id, name, high_priority]`` in submission order.
    tasks: list
    #: ``[pred_id, succ_id, kind]`` triples.
    edges: list
    #: ``["task", id] | ["barrier"] | ["wait", id]`` in program order.
    stream: list

    @property
    def task_count(self) -> int:
        return len(self.tasks)


def load_recording(source) -> LoadedRecording:
    """Load a saved recording from a path, a parsed dict, or a
    :class:`RecordedProgram` (uniform input for the replayer)."""

    import json

    if isinstance(source, RecordedProgram):
        doc = source.to_json_dict()
    elif isinstance(source, dict):
        doc = source
    else:
        with open(source, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    if doc.get("format") != "repro.recording":
        raise ValueError(
            "not a repro recording (missing format tag); save one with "
            "RecordedProgram.save(path)"
        )
    return LoadedRecording(
        tasks=[list(t) for t in doc["tasks"]],
        edges=[list(e) for e in doc["edges"]],
        stream=[list(e) for e in doc["stream"]],
    )


class RecordingRuntime:
    """Implements the active-runtime protocol; see module docstring."""

    def __init__(
        self,
        execute: Literal["eager", "skip"] = "eager",
        config: Optional[RuntimeConfig] = None,
        **knobs,
    ):
        # *execute* is the one backend-specific argument; every shared
        # knob goes through the same validated path as SmpssRuntime.
        # Recording exists to inspect the DAG afterwards, so the
        # backend default for keep_graph flips to True.
        if config is None:
            knobs.setdefault("keep_graph", True)
        self.config = resolve_config(config, knobs, runtime="RecordingRuntime")
        self.execute = execute
        reset_task_ids()
        self.graph = TaskGraph(keep_finished=self.config.keep_graph)
        self.tracker = DependencyTracker(
            self.graph,
            config=TrackerConfig(
                enable_renaming=self.config.enable_renaming,
                rename_inout=self.config.rename_inout,
            ),
            tracer=NullTracer(),
        )
        self.constants = self.config.constants
        self.events: list[tuple] = []
        from ..obs.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()
        self._m_analysis = self.metrics.histogram("analysis_seconds")
        self._entered = False
        self._in_task = False

    def in_task_body(self) -> bool:
        return self._in_task

    # -- active-runtime protocol ------------------------------------------
    def submit(self, definition, args: tuple, kwargs: dict) -> TaskInstance:
        task = instantiate(definition, args, kwargs, self.constants)
        t0 = perf_counter()
        self.tracker.analyze(task)
        self._m_analysis.observe(perf_counter() - t0)
        self.events.append(("task", task))
        if self.execute == "eager":
            # Run the body now: every predecessor already ran its body
            # (program order), so the data is valid.  Graph state is
            # deliberately NOT retired — the recorded DAG keeps the
            # worst-case hazard picture described in the module
            # docstring, and stays replayable.
            values = resolve_call_values(task)
            self._in_task = True
            try:
                task.definition.func(*values)
            finally:
                self._in_task = False
        return task

    def barrier(self) -> None:
        self.events.append(("barrier",))
        if self.execute == "eager":
            self.tracker.write_back_all()
            self.tracker.reset()

    wait_all = barrier

    def wait_for(self, task: TaskInstance) -> None:
        self.events.append(("wait", task))

    def acquire(self, obj):
        """Latest storage of *obj* (eager mode already produced it)."""

        if self.execute == "eager" and self.tracker.is_tracked(obj):
            datum = self.tracker.datum_for(obj)
            chain = datum.chains.get(None)
            if chain is not None:
                if chain.current.producer is not None:
                    # The replayer must block the main thread here.
                    self.events.append(("wait", chain.current.producer))
                return chain.current.resolve_storage()
        return obj

    # -- recording session --------------------------------------------------
    def __enter__(self) -> "RecordingRuntime":
        _api.push_runtime(self)
        self._entered = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._entered:
            self._entered = False
            # Defensive pop: never leaves a stale stack entry (or a
            # stale owner) behind, even after a mid-``with`` exception.
            _api.discard_runtime(self)

    def finish(self) -> RecordedProgram:
        """Close the recording and return the program description."""

        self.metrics.gauge("graph.total_tasks").set(
            self.graph.stats.total_tasks
        )
        self.metrics.gauge("graph.total_edges").set(
            self.graph.stats.total_edges
        )
        self.metrics.gauge("graph.renames").set(self.graph.stats.renames)
        return RecordedProgram(
            graph=self.graph, events=list(self.events), metrics=self.metrics
        )


def record_program(
    main, *args, execute: Literal["eager", "skip"] = "eager", **kwargs
) -> RecordedProgram:
    """Record ``main(*args, **kwargs)`` under a recording runtime."""

    recorder = RecordingRuntime(execute=execute)
    with recorder:
        main(*args, **kwargs)
    return recorder.finish()
