"""Runtime construction knobs and the one validated path to them.

Every runtime front-end (:class:`~repro.core.runtime.SmpssRuntime`, the
:class:`~repro.core.recorder.RecordingRuntime`, and the simulator's
:class:`~repro.sim.simruntime.SimulatedRuntime`) accepts the same two
construction idioms::

    SmpssRuntime(num_workers=3, trace=True)          # keyword knobs
    SmpssRuntime(config=RuntimeConfig(trace=True))   # an explicit config

Both funnel through :func:`resolve_config`, which validates the knob
names once, in one place: an unknown knob raises a ``TypeError`` naming
the knob (with a did-you-mean suggestion), and a knob supplied both as
a keyword *and* as a non-default field of an explicit config raises a
``TypeError`` naming the conflict instead of silently picking a winner.
The passed-in config object is never mutated — each runtime works on a
private copy.

Backends that implement only a subset of the knobs (the recorder has no
worker threads, the simulator has no memory limit) simply ignore the
fields they do not consume; the knob *names* stay uniform so a config
built for one backend is valid input for another.
"""

from __future__ import annotations

import dataclasses
import difflib
import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from .scheduler import SmpssScheduler

__all__ = ["RuntimeConfig", "resolve_config"]


@dataclass
class RuntimeConfig:
    """Knobs of the runtimes (canonical home; see module docstring)."""

    #: Worker threads in addition to the main thread.  ``None``: fill
    #: the machine (cpu_count - 1, at least 1).
    num_workers: Optional[int] = None
    #: Graph-size blocking condition: the main thread helps execute
    #: tasks while more than this many are in flight.
    max_pending_tasks: int = 10_000
    #: Memory-limit blocking condition (section III lists "a memory
    #: limit" among the main thread's blocking conditions): while live
    #: renamed buffers exceed this many bytes, the main thread stops
    #: submitting and helps execute.  ``None`` disables the limit.
    memory_limit_bytes: Optional[int] = None
    #: Retain finished nodes/edges for post-mortem graph inspection.
    keep_graph: bool = False
    #: Renaming switches (see :class:`TrackerConfig`).
    enable_renaming: bool = True
    rename_inout: bool = True
    #: Record trace events (the "tracing-enabled runtime").  Collection
    #: is per-thread ring buffers (:class:`ThreadLocalTracer`): workers
    #: append to their own buffer, merged when the events are read.
    trace: bool = False
    #: Events each thread's ring buffer holds before dropping oldest.
    trace_buffer_size: int = 1 << 16
    #: Populate a :class:`repro.obs.MetricsRegistry` (per-task-type
    #: durations, analysis/barrier overhead, queue depths).  Much
    #: cheaper than tracing; on by default.
    metrics: bool = True
    #: Copy final renamed versions back into user objects at barriers.
    write_back_on_barrier: bool = True
    #: Access sanitizer (repro.check dynamic layer): execute task bodies
    #: against read-only guards on non-written numpy parameters and
    #: write-track declared outputs.  Debugging mode, off by default.
    #: Incompatible with ``backend="processes"`` (the guards wrap views
    #: of master-side storage, which never reach a worker process).
    sanitize: bool = False
    #: Execution backend: ``"threads"`` runs task bodies on worker
    #: threads in this process (the classic SMPSs layout; parallel for
    #: GIL-releasing kernels); ``"processes"`` runs them in long-lived
    #: forked worker processes fed over pipes (:mod:`repro.mp` — true
    #: parallelism for pure-Python bodies; pass shared data as
    #: arena-backed arrays, see :func:`repro.arena_array`); ``"cluster"``
    #: dispatches ready tasks to remote node agents (:mod:`repro.dist`)
    #: listed in ``nodes``, with datum residency tracking so content
    #: moves only when a consumer actually needs it elsewhere.
    backend: str = "threads"
    #: Agent addresses for ``backend="cluster"``: a list of
    #: ``"tcp:HOST:PORT"`` specs (or unix-socket paths for same-host
    #: agents), one per node started with ``python -m repro dist agent``.
    #: Worker count is derived from the agents' advertised slots, so
    #: ``num_workers`` must be left unset.
    nodes: Optional[list] = None
    #: Per-attempt dial timeout for agent connections (the manager
    #: retries with bounded backoff on top of this).
    dist_connect_timeout: float = 10.0
    #: ``True``: every whole-object write returns to the master with the
    #: task's reply (higher traffic, but an agent death never loses
    #: data).  ``False`` (default): outputs stay resident on the
    #: producing node until a barrier or a remote consumer fetches them.
    dist_write_through: bool = False
    #: Feed the scheduler the locality-aware placement hook (prefer the
    #: node holding the most input bytes; idle fallback).  Disable to
    #: measure placement's effect in ablations.
    dist_placement: bool = True
    #: Live inspection & control (:mod:`repro.live`): serve graph-delta
    #: events and accept pause/step/breakpoint commands while the run is
    #: in flight.  Implies ``trace=True`` (the event plane is a tap on
    #: the tracer).  Off by default — the dispatch gate then stays
    #: entirely out of the scheduler's hot path.
    live: bool = False
    #: Where the live session listens: a unix-socket path, or
    #: ``"tcp:HOST:PORT"`` (port 0 picks an ephemeral port; the bound
    #: address is on ``runtime.live.address``).  ``None`` with
    #: ``live=True`` serves on a unix socket in a temp directory.
    #: Setting an address implies ``live=True``.
    live_address: Optional[str] = None
    #: Start with the dispatch gate paused, so a client can attach and
    #: watch the graph grow before anything executes.
    live_start_paused: bool = False
    #: Seconds between periodic metrics snapshots on the event stream.
    live_snapshot_interval: float = 0.25
    #: Always-on runtime health (:mod:`repro.obs.health`): a watchdog
    #: thread samples scheduler/tracker state every ``health_interval``
    #: seconds, detects stalls / starvation / queue imbalance / worker
    #: deaths / suspected deadlocks, keeps a bounded flight-recorder
    #: ring of recent completions, and dumps it to disk when an anomaly
    #: fires (or on SIGUSR1).  Requires ``metrics=True`` (the default);
    #: works with tracing off — that is its point.
    health: bool = False
    #: Watchdog sampling period in seconds.
    health_interval: float = 0.5
    #: Metrics exposition endpoint (Prometheus text format) for the
    #: health layer: a unix-socket path or ``"tcp:HOST:PORT"`` (port 0
    #: picks an ephemeral one; the bound address is on
    #: ``runtime.health.address``).  Setting an address implies
    #: ``health=True``; ``None`` with ``health=True`` keeps the watchdog
    #: and flight recorder in-process only.
    health_address: Optional[str] = None
    #: Directory flight-recorder dumps land in (anomaly / SIGUSR1 /
    #: explicit ``runtime.health.dump()``).  ``None``: the system temp
    #: directory.
    health_dump_dir: Optional[str] = None
    #: Ready-list structure; swap for CentralQueueScheduler in ablations.
    scheduler_factory: Callable = SmpssScheduler
    #: Extra names usable in dimension/region expressions (the paper's
    #: compile-time constants like N and M).
    constants: dict = field(default_factory=dict)

    def fill_num_workers(self) -> None:
        """Resolve ``num_workers=None`` to the machine's free cores."""

        if self.num_workers is None:
            self.num_workers = max(1, (os.cpu_count() or 2) - 1)


_FIELDS = {f.name: f for f in dataclasses.fields(RuntimeConfig)}


def _default_of(f: dataclasses.Field):
    if f.default is not dataclasses.MISSING:
        return f.default
    return f.default_factory()  # type: ignore[misc]


def resolve_config(
    config: Optional[RuntimeConfig] = None,
    overrides: Optional[dict] = None,
    *,
    runtime: str = "runtime",
) -> RuntimeConfig:
    """Merge an explicit config with keyword knobs into a fresh config.

    * ``config=None`` and no overrides: all defaults.
    * Unknown override names raise ``TypeError`` naming the knob and,
      when a near-miss exists, suggesting the intended one.
    * A knob given both ways (a keyword *and* a non-default value on the
      explicit config) raises ``TypeError`` naming the conflict.

    The returned config is always a private copy — the caller's
    ``config`` object is never mutated.
    """

    overrides = overrides or {}
    if config is not None and not isinstance(config, RuntimeConfig):
        raise TypeError(
            f"{runtime}: config must be a RuntimeConfig, "
            f"not {type(config).__name__}"
        )
    unknown = [name for name in overrides if name not in _FIELDS]
    if unknown:
        parts = []
        for name in unknown:
            close = difflib.get_close_matches(name, _FIELDS, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            parts.append(f"{name!r}{hint}")
        raise TypeError(
            f"{runtime}: unknown runtime option(s) {', '.join(parts)}; "
            f"valid knobs: {', '.join(sorted(_FIELDS))}"
        )
    if config is None:
        resolved = RuntimeConfig()
    else:
        conflicts = [
            name
            for name in overrides
            if getattr(config, name) != _default_of(_FIELDS[name])
            and getattr(config, name) != overrides[name]
        ]
        if conflicts:
            raise TypeError(
                f"{runtime}: conflicting runtime option(s) "
                f"{', '.join(repr(c) for c in sorted(conflicts))}: given both "
                f"as a keyword and as a non-default field of the explicit "
                f"config; set each knob in exactly one place"
            )
        resolved = dataclasses.replace(config)
        # A shared mutable default (constants) must not alias the
        # caller's config across the copy.
        resolved.constants = dict(config.constants)
    for name, value in overrides.items():
        setattr(resolved, name, value)
    if resolved.backend not in ("threads", "processes", "cluster"):
        raise TypeError(
            f"{runtime}: unknown backend {resolved.backend!r}; "
            f"valid backends: 'threads', 'processes', 'cluster'"
        )
    if resolved.backend == "cluster":
        if not resolved.nodes:
            raise TypeError(
                f"{runtime}: backend='cluster' needs nodes=[...] — the "
                f"agent addresses to dispatch to (start each with "
                f"'python -m repro dist agent ADDR')"
            )
        if resolved.num_workers is not None:
            raise TypeError(
                f"{runtime}: num_workers is derived from the agents' "
                f"advertised slots under backend='cluster'; size the "
                f"fleet with --slots on each agent instead"
            )
    elif resolved.nodes:
        raise TypeError(
            f"{runtime}: nodes=[...] only applies to backend='cluster' "
            f"(got backend={resolved.backend!r})"
        )
    if resolved.live_address is not None or resolved.live_start_paused:
        resolved.live = True
    if resolved.live and not resolved.trace:
        # The event plane is a listener on the tracer; without events
        # there is nothing to stream.
        resolved.trace = True
    if resolved.health_address is not None:
        resolved.health = True
    if resolved.health and not resolved.metrics:
        raise TypeError(
            f"{runtime}: health=True requires metrics=True — the watchdog "
            f"and exposition endpoint publish into the MetricsRegistry; "
            f"drop metrics=False (it is the default) or disable health"
        )
    if resolved.backend in ("processes", "cluster") and resolved.sanitize:
        raise TypeError(
            f"{runtime}: sanitize=True is incompatible with "
            f"backend={resolved.backend!r} — the sanitizer guards "
            f"thread-backend views only (its read-only wrappers never "
            f"reach a worker process); run the sanitized debug pass "
            f"with backend='threads'"
        )
    return resolved
