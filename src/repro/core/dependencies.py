"""Run-time dependency analysis (sections II and V).

"The runtime takes the memory address, size and directionality of each
parameter at each task invocation and uses them to analyze the
dependencies between them."

The engine keeps, per tracked base object, a chain of
:class:`~repro.core.renaming.Version` objects.  Every task access is
matched against the chain:

* a read depends on the producer of the current version (RAW — the only
  dependency kind that survives renaming);
* a write would conflict with pending readers (WAR) and the pending
  producer (WAW); with renaming enabled these hazards are removed by
  rolling the chain to a new version with *fresh* (``output``) or
  *cloned* (``inout``) storage, with no edge added for the hazard;
* with renaming disabled — by configuration, for non-renamable types
  such as representants, or for array-region accesses — the hazards
  become explicit ANTI/OUTPUT edges instead, which is slower but equally
  correct.

Array regions (section V.A) are handled with per-region chains and
hyper-rectangle overlap tests; see :mod:`repro.core.regions`.  A write
to a region rolls every overlapping chain so later readers of any
overlapping region order after the write (the write itself carries an
OUTPUT edge to each displaced producer, so transitivity preserves the
full happens-before relation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .graph import EdgeKind, TaskGraph
from .regions import Region
from .renaming import (
    AdapterRegistry,
    StorageKind,
    Version,
    default_registry,
)
from .task import Direction, TaskInstance, TaskState

__all__ = ["TrackerConfig", "DependencyTracker", "DependencyError", "TrackedDatum"]


class DependencyError(RuntimeError):
    """Raised on accesses the engine cannot give sequential semantics to."""


@dataclass
class TrackerConfig:
    """Tunables of the dependency engine.

    The defaults reproduce the paper's runtime; the switches exist for
    the ablation benchmarks (renaming off = SuperMatrix-style analysis,
    section VII.C notes "SuperMatrix does not support renaming").
    """

    #: Master renaming switch (section II).
    enable_renaming: bool = True
    #: Copy-based renaming of ``inout`` parameters with pending readers
    #: (what makes the N Queens partial-solution array duplication
    #: automatic, section VI.E).
    rename_inout: bool = True
    #: Whether untracked scalar values (ints, floats, strings, tuples)
    #: are silently treated as by-value; if False they raise.
    allow_untracked_scalars: bool = True


#: Immutable types that are always by-value, never tracked.
_SCALAR_TYPES = (int, float, complex, bool, str, bytes, type(None), tuple, frozenset)


class _Chain:
    """The version chain of one (base, region) access key."""

    __slots__ = ("key", "current", "version_count")

    def __init__(self, key: Optional[Region], initial: Version):
        self.key = key
        self.current = initial
        self.version_count = 1

    def roll(self, version: Version) -> None:
        self.current = version
        self.version_count += 1


class TrackedDatum:
    """Per-base-object tracking state."""

    __slots__ = (
        "base", "adapter", "chains", "region_mode", "renamed_buffers",
        "tracker", "mat_lock",
    )

    def __init__(self, base: Any, adapter, tracker=None) -> None:
        self.base = base
        self.adapter = adapter
        self.tracker = tracker
        #: Guards lazy materialisation/release of this datum's renamed
        #: buffers.  One lock per datum (not per version): versions are
        #: allocated once per *submission*, data once per user object,
        #: and versions of distinct data never contend on it.
        import threading

        self.mat_lock = threading.Lock()
        #: access-key -> chain; ``None`` key = whole-object accesses.
        self.chains: dict[Optional[Region], _Chain] = {}
        #: Set on the first region access; once on, the datum uses
        #: edge-based analysis forever (renamed buffers would alias).
        self.region_mode = False
        self.renamed_buffers = 0

    def whole_chain(self) -> _Chain:
        chain = self.chains.get(None)
        if chain is None:
            chain = _Chain(None, Version(self, 0, StorageKind.INITIAL))
            self.chains[None] = chain
        return chain

    def chain_for(self, key: Optional[Region]) -> _Chain:
        chain = self.chains.get(key)
        if chain is None:
            chain = _Chain(key, Version(self, 0, StorageKind.INITIAL))
            self.chains[key] = chain
        return chain

    def on_rename_materialised(self, version: Version) -> None:
        self.renamed_buffers += 1
        if self.tracker is not None:
            self.tracker.note_materialised(version)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TrackedDatum {type(self.base).__name__}@{id(self.base):#x}>"


def _finished(task: Optional[TaskInstance]) -> bool:
    return task is None or task.state is TaskState.FINISHED


class DependencyTracker:
    """Builds the task graph from the stream of task invocations.

    Driven from a single submitting thread (the main thread, as in the
    paper); completion state of predecessor tasks is read without locks
    because the owning runtime serialises graph mutation.
    """

    def __init__(
        self,
        graph: TaskGraph,
        registry: Optional[AdapterRegistry] = None,
        config: Optional[TrackerConfig] = None,
        tracer=None,
    ) -> None:
        self.graph = graph
        self.registry = registry or default_registry()
        self.config = config or TrackerConfig()
        # Falsy tracers (NullTracer) become None so per-task guards are a
        # plain None check, not a Python-level __bool__ call.
        self.tracer = tracer if tracer else None
        self._data: dict[int, TrackedDatum] = {}
        #: Residency hook installed by the cluster backend
        #: (:mod:`repro.dist`): ``fn(version)`` makes the master-side
        #: storage of *version* current before it is read locally —
        #: fetching content that is resident on a remote node.  ``None``
        #: (every other backend): master storage is always current.
        self.residency_fetch = None
        # Renamed-buffer memory accounting: materialisation happens on
        # worker threads, so the counter takes its own tiny lock.
        import threading

        self._bytes_lock = threading.Lock()
        self._renamed_bytes = 0

    # ------------------------------------------------------------------
    # datum lookup
    # ------------------------------------------------------------------
    def datum_for(self, obj: Any) -> TrackedDatum:
        datum = self._data.get(id(obj))
        if datum is None:
            datum = TrackedDatum(obj, self.registry.adapter_for(obj), tracker=self)
            self._data[id(obj)] = datum
        return datum

    def is_tracked(self, obj: Any) -> bool:
        return id(obj) in self._data

    @property
    def tracked_count(self) -> int:
        return len(self._data)

    @property
    def total_renamed_buffers(self) -> int:
        return sum(d.renamed_buffers for d in self._data.values())

    # ------------------------------------------------------------------
    # renamed-buffer memory management (section III's "memory limit"
    # blocking condition needs live accounting + garbage collection)
    # ------------------------------------------------------------------
    def note_materialised(self, version: Version) -> None:
        size = version.datum.adapter.size_of(version.datum.base)
        with self._bytes_lock:
            self._renamed_bytes += size

    @property
    def renamed_bytes(self) -> int:
        """Bytes currently held by live renamed buffers."""

        with self._bytes_lock:
            return self._renamed_bytes

    def release_after(self, task: TaskInstance) -> int:
        """Free renamed buffers made dead by *task* finishing.

        A version's buffer is dead once its producer has finished, no
        reader is pending, and a newer version has superseded it in the
        chain.  Called by the runtime after each task completion;
        returns the bytes released.
        """

        freed = 0
        for _name, version in task.reads:
            freed += self._maybe_release(version)
            if version.prev is not None:
                freed += self._maybe_release(version.prev)
        for _name, version in task.writes:
            if version.prev is not None:
                freed += self._maybe_release(version.prev)
        if freed:
            with self._bytes_lock:
                self._renamed_bytes -= freed
        return freed

    def _maybe_release(self, version: Version) -> int:
        if version.kind not in (StorageKind.FRESH, StorageKind.CLONE):
            return 0
        if not version.is_materialised or version.released:
            return 0
        if not _finished(version.producer):
            return 0
        if version.pending_readers():
            return 0
        datum = version.datum
        for chain in datum.chains.values():
            # The chain head (or anything aliasing its storage through
            # SAME links, i.e. sharing the storage root) must stay alive.
            if chain.current.root is version:
                return 0
        return version.drop_storage()

    # ------------------------------------------------------------------
    # analysis entry point
    # ------------------------------------------------------------------
    def analyze(self, task: TaskInstance) -> None:
        """Insert *task* into the graph with all its dependency edges."""

        self.graph.add_task(task)
        data = self._data
        call_values = task.call_values
        if call_values is not None:
            # Simple positional task: read the plan's precompiled
            # ``(name, direction, position)`` specs against the bound
            # value tuple directly — no ParamAccess objects exist (or
            # get allocated) on this path.
            opaque = Direction.OPAQUE
            for name, direction, pos in (
                task.definition._invocation_plan.access_specs
            ):
                if direction is opaque:
                    continue  # void *: passes through unaltered
                value = call_values[pos]
                if isinstance(value, _SCALAR_TYPES):
                    if not self.config.allow_untracked_scalars:
                        raise DependencyError(
                            f"task {task.name!r}: parameter {name!r} is a "
                            f"by-value scalar but untracked scalars are "
                            f"disabled"
                        )
                    continue
                datum = data.get(id(value))
                if datum is None:
                    datum = TrackedDatum(
                        value, self.registry.adapter_for(value), tracker=self
                    )
                    data[id(value)] = datum
                if datum.region_mode:
                    region = Region.full(self._rank_of(datum))
                    self._analyze_region(task, datum, region, direction, name)
                else:
                    self._analyze_whole(task, datum, direction, name)
            return
        for access in task.accesses:
            direction = access.direction
            if direction is Direction.OPAQUE:
                continue  # void *: passes through unaltered (section II)
            value = access.value
            if isinstance(value, _SCALAR_TYPES):
                if not self.config.allow_untracked_scalars:
                    raise DependencyError(
                        f"task {task.name!r}: parameter {access.name!r} is a "
                        f"by-value scalar but untracked scalars are disabled"
                    )
                continue
            datum = data.get(id(value))
            if datum is None:
                datum = TrackedDatum(
                    value, self.registry.adapter_for(value), tracker=self
                )
                data[id(value)] = datum
            if access.region is not None:
                self._analyze_region(
                    task, datum, access.region, direction, access.name
                )
            elif datum.region_mode:
                region = Region.full(self._rank_of(datum))
                self._analyze_region(task, datum, region, direction, access.name)
            else:
                self._analyze_whole(task, datum, direction, access.name)

    # ------------------------------------------------------------------
    # whole-object path (renaming-capable)
    # ------------------------------------------------------------------
    def _analyze_whole(self, task, datum: TrackedDatum, direction, name) -> None:
        chain = datum.chains.get(None)
        if chain is None:
            chain = datum.whole_chain()
        cur = chain.current
        graph = self.graph
        finished = TaskState.FINISHED

        if direction is Direction.INPUT:
            producer = cur.producer
            if producer is not None and producer.state is not finished:
                graph.add_dependency(producer, task, EdgeKind.TRUE)
            cur.readers.append(task)
            task.reads.append((name, cur))
            return

        renaming = self.config.enable_renaming and datum.adapter.renamable

        if direction is Direction.OUTPUT:
            producer = cur.producer
            pending_readers = (
                [t for t in cur.pending_readers() if t is not task]
                if cur.readers
                else []
            )
            hazard = (
                producer is not None and producer.state is not finished
            ) or pending_readers
            if hazard and renaming:
                newv = Version(datum, chain.version_count, StorageKind.FRESH)
                graph.note_rename()
                if self.tracer:
                    self.tracer.rename(task, datum, StorageKind.FRESH)
            else:
                if hazard:  # renaming unavailable: explicit edges
                    self._hazard_edges(cur, pending_readers, task)
                newv = Version(datum, chain.version_count, StorageKind.SAME, prev=cur)
            newv.producer = task
            chain.roll(newv)
            task.writes.append((name, newv))
            return

        if direction is Direction.INOUT:
            producer = cur.producer
            if producer is not None and producer.state is not finished:
                # reads the previous value: always a RAW dependency
                graph.add_dependency(producer, task, EdgeKind.TRUE)
            pending_readers = (
                [t for t in cur.pending_readers() if t is not task]
                if cur.readers
                else []
            )
            if pending_readers and renaming and self.config.rename_inout:
                newv = Version(datum, chain.version_count, StorageKind.CLONE, prev=cur)
                graph.note_rename()
                if self.tracer:
                    self.tracer.rename(task, datum, StorageKind.CLONE)
            else:
                for reader in pending_readers:
                    graph.add_dependency(reader, task, EdgeKind.ANTI)
                newv = Version(datum, chain.version_count, StorageKind.SAME, prev=cur)
            newv.producer = task
            chain.roll(newv)
            # The task reads the previous value (and a CLONE resolves
            # from it at execution time): register as a reader so the
            # memory manager keeps the buffer alive until then.
            cur.readers.append(task)
            task.reads.append((name, cur))
            task.writes.append((name, newv))
            return

        raise DependencyError(f"unexpected direction {direction}")  # pragma: no cover

    def _true_dep(self, version: Version, task: TaskInstance) -> None:
        if not _finished(version.producer):
            self.graph.add_dependency(version.producer, task, EdgeKind.TRUE)

    def _hazard_edges(self, cur: Version, pending_readers, task) -> None:
        if not _finished(cur.producer):
            self.graph.add_dependency(cur.producer, task, EdgeKind.OUTPUT)
        for reader in pending_readers:
            self.graph.add_dependency(reader, task, EdgeKind.ANTI)

    # ------------------------------------------------------------------
    # region path (edge-based, no renaming)
    # ------------------------------------------------------------------
    def _analyze_region(
        self, task, datum: TrackedDatum, region: Region, direction, name
    ) -> None:
        if not datum.region_mode:
            # Switching an object into region mode is only sound while
            # its live data still sits in the user's own buffer.
            whole = datum.chains.get(None)
            if whole is not None and not whole.current.storage_is_base():
                raise DependencyError(
                    f"task {task.name!r}: array-region access to an object "
                    f"whose current version lives in a renamed buffer; "
                    f"insert a barrier before mixing whole-object renaming "
                    f"with region accesses"
                )
            datum.region_mode = True

        overlapping = [
            chain
            for key, chain in datum.chains.items()
            if key is None or key.overlaps(region)
        ]

        if direction.reads:
            for chain in overlapping:
                self._true_dep(chain.current, task)
            target = datum.chain_for(region)
            target.current.readers.append(task)
            if target not in overlapping:  # freshly created chain
                pass
            task.reads.append((name, target.current))

        if direction.writes:
            for chain in overlapping:
                cur = chain.current
                if not _finished(cur.producer):
                    kind = EdgeKind.TRUE if direction.reads else EdgeKind.OUTPUT
                    self.graph.add_dependency(cur.producer, task, kind)
                for reader in cur.pending_readers():
                    if reader is not task:
                        self.graph.add_dependency(reader, task, EdgeKind.ANTI)
            target = datum.chain_for(region)
            newv = Version(
                datum, target.version_count, StorageKind.SAME, prev=target.current
            )
            newv.producer = task
            target.roll(newv)
            task.writes.append((name, newv))
            # Conservatively roll every other overlapping chain so its
            # future readers order after this write (transitively after
            # the displaced producer via the OUTPUT edge above).
            for chain in overlapping:
                if chain is target:
                    continue
                rolled = Version(
                    datum, chain.version_count, StorageKind.SAME, prev=chain.current
                )
                rolled.producer = task
                chain.roll(rolled)

    def _rank_of(self, datum: TrackedDatum) -> int:
        shape = datum.adapter.shape_of(datum.base)
        return len(shape) if shape else 1

    # ------------------------------------------------------------------
    # barriers
    # ------------------------------------------------------------------
    def write_back_all(self) -> int:
        """Copy final renamed versions back into the user objects.

        Called once every in-flight task has finished (a barrier).
        Returns the number of objects written back.
        """

        count = 0
        for datum in self._data.values():
            chain = datum.chains.get(None)
            if chain is None:
                continue
            cur = chain.current
            if not cur.storage_is_base():
                datum.adapter.write_back(datum.base, cur.resolve_storage())
                count += 1
        return count

    def reset(self) -> None:
        """Forget all version chains (used after a write-back barrier).

        Frees renamed buffers and the strong references pinning user
        objects; tracking restarts lazily at the next access.
        """

        self._data.clear()
