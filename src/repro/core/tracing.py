"""Tracing-enabled runtime support.

Section VII.A: "SMPSs is composed of a set of tools focused on the
programmer consisting of a compiler, a standard runtime and a
tracing-enabled runtime.  The tracing-enabled version records events
related to task creation and execution for post-mortem analysis with
the Paraver tool."

This module is the Python analogue: a :class:`Tracer` collects typed
events with timestamps (wall-clock in the threaded runtime, virtual
time in the simulator) and offers post-mortem queries — per-thread busy
time, task intervals, steal/rename counts — plus a Paraver-like ASCII
timeline and a ``.prv``-style record dump.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, defaultdict, deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

__all__ = [
    "TraceEvent",
    "Tracer",
    "ThreadLocalTracer",
    "NullTracer",
    "EventKind",
]


class EventKind:
    TASK_ADDED = "task_added"
    TASK_READY = "task_ready"
    TASK_START = "task_start"
    TASK_END = "task_end"
    #: A dependency edge entered the graph: ``task_id`` is the successor,
    #: ``extra`` is ``(pred_id, kind)``.  Emitted by the graph while the
    #: main thread analyses a submission, so a live consumer sees the
    #: DAG grow edge by edge (the TEMANEJO-style feed ``repro.live``
    #: streams as graph deltas).
    EDGE_ADDED = "edge_added"
    STEAL = "steal"
    RENAME = "rename"
    BARRIER_ENTER = "barrier_enter"
    BARRIER_EXIT = "barrier_exit"
    #: ``wait_on(obj)`` partial barrier: the main thread blocks on one
    #: datum's producer (only emitted when it actually has to wait).
    WAIT_ON_ENTER = "wait_on_enter"
    WAIT_ON_EXIT = "wait_on_exit"
    WRITE_BACK = "write_back"
    #: sanitizer diagnostic (repro.check): rule + parameter in extra
    VIOLATION = "violation"


@dataclass(frozen=True)
class TraceEvent:
    time: float
    kind: str
    task_id: int = -1
    task_name: str = ""
    thread: int = -1
    extra: tuple = ()


class Tracer:
    """Event recorder; one per runtime instance.

    *clock* defaults to :func:`time.perf_counter`; the simulator injects
    its virtual clock instead.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock or time.perf_counter
        self.events: list[TraceEvent] = []
        #: Optional per-event callback ``fn(event)`` invoked on the
        #: emitting thread right after the event is recorded.  This is
        #: the live event plane's tap (:mod:`repro.live`); ``None`` (the
        #: default) costs one attribute load + identity check per event.
        #: The callback must be fast and must not take runtime locks.
        self.listener: Optional[Callable[[TraceEvent], None]] = None

    # -- emit helpers ------------------------------------------------------
    def _emit(self, kind: str, task=None, thread: int = -1, extra: tuple = ()):
        event = TraceEvent(
            time=self.clock(),
            kind=kind,
            task_id=task.task_id if task is not None else -1,
            task_name=task.name if task is not None else "",
            thread=thread,
            extra=extra,
        )
        self.events.append(event)
        listener = self.listener
        if listener is not None:
            listener(event)

    def task_added(self, task) -> None:
        self._emit(EventKind.TASK_ADDED, task)

    def task_ready(self, task, thread: int = -1) -> None:
        """*thread* is the one whose completion released the last input
        dependency (-1: released at submission, no unlocking thread).
        Recording it is what makes the locality hit-rate of section III
        — "tasks whose last input dependency has been removed by that
        thread" — computable post mortem."""

        self._emit(EventKind.TASK_READY, task, thread)

    def task_start(self, task, thread: int) -> None:
        self._emit(EventKind.TASK_START, task, thread)

    def task_end(self, task, thread: int) -> None:
        self._emit(EventKind.TASK_END, task, thread)

    def edge(self, pred, succ, kind: str) -> None:
        """A dependency edge *pred* -> *succ* entered the graph."""

        self._emit(EventKind.EDGE_ADDED, succ, extra=(pred.task_id, kind))

    def steal(self, task, thief: int, victim: int) -> None:
        self._emit(EventKind.STEAL, task, thief, extra=("victim", victim))

    def rename(self, task, datum, kind) -> None:
        self._emit(
            EventKind.RENAME,
            task,
            extra=(type(datum.base).__name__, getattr(kind, "value", str(kind))),
        )

    def barrier_enter(self, thread: int = 0) -> None:
        self._emit(EventKind.BARRIER_ENTER, thread=thread)

    def barrier_exit(self, thread: int = 0) -> None:
        self._emit(EventKind.BARRIER_EXIT, thread=thread)

    def wait_on_enter(self, thread: int = 0) -> None:
        self._emit(EventKind.WAIT_ON_ENTER, thread=thread)

    def wait_on_exit(self, thread: int = 0) -> None:
        self._emit(EventKind.WAIT_ON_EXIT, thread=thread)

    def write_back(self, count: int) -> None:
        self._emit(EventKind.WRITE_BACK, extra=(count,))

    def violation(self, task, thread: int, rule: str, param: str) -> None:
        self._emit(EventKind.VIOLATION, task, thread, extra=(rule, param))

    def ingest(self, events: Iterable[TraceEvent]) -> None:
        """Merge externally recorded events into this tracer's stream.

        The process backend uses this to land worker-side ring buffers
        (timestamped with the same monotonic clock) in the master's
        timeline, so every consumer — reports, Perfetto export, trace
        diffing — sees worker processes as ordinary threads.  Ingested
        events arrive in batches *after* the fact, so their timestamps
        may predate already-recorded ones; readers that need time order
        sort (``task_intervals``, the Chrome-trace exporter).
        """

        listener = self.listener
        for event in events:
            self.events.append(event)
            if listener is not None:
                listener(event)

    # -- post-mortem queries ----------------------------------------------
    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Counter:
        return Counter(e.kind for e in self.events)

    def task_intervals(self) -> dict[int, tuple[float, float, int, str]]:
        """task_id -> (start, end, thread, name) for completed tasks.

        Events are walked in timestamp order, not list order: batches
        landed by :meth:`ingest` (worker rings shipped with mp replies)
        can place a task's START *after* its END in the raw list, which
        would silently drop the interval.
        """

        starts: dict[int, TraceEvent] = {}
        intervals: dict[int, tuple[float, float, int, str]] = {}
        for event in sorted(self.events, key=lambda e: e.time):
            if event.kind == EventKind.TASK_START:
                starts[event.task_id] = event
            elif event.kind == EventKind.TASK_END:
                begin = starts.get(event.task_id)
                if begin is not None:
                    intervals[event.task_id] = (
                        begin.time, event.time, event.thread, event.task_name
                    )
        return intervals

    def busy_time_by_thread(self) -> dict[int, float]:
        busy: dict[int, float] = defaultdict(float)
        for start, end, thread, _name in self.task_intervals().values():
            busy[thread] += end - start
        return dict(busy)

    def tasks_by_thread(self) -> dict[int, int]:
        counts: dict[int, int] = defaultdict(int)
        for _s, _e, thread, _n in self.task_intervals().values():
            counts[thread] += 1
        return dict(counts)

    def makespan(self) -> float:
        intervals = self.task_intervals().values()
        if not intervals:
            return 0.0
        return max(e for _s, e, _t, _n in intervals) - min(
            s for s, _e, _t, _n in intervals
        )

    # -- exports -------------------------------------------------------------
    def to_records(self) -> Iterable[str]:
        """Paraver-like one-line-per-event textual records."""

        for event in self.events:
            extra = ":".join(str(x) for x in event.extra)
            yield (
                f"{event.time:.9f}:{event.kind}:{event.thread}:"
                f"{event.task_id}:{event.task_name}:{extra}"
            )

    def to_paraver(self) -> str:
        """A Paraver-style trace file (``.prv`` dialect).

        Header line ``#Paraver (...)`` followed by state records
        (``1:cpu:appl:task:thread:begin:end:state``) for task
        executions and event records (``2:cpu:...:time:type:value``)
        for the point events (ready, steal, rename, barrier).  Event
        type codes are listed in the trailer comment.
        """

        intervals = self.task_intervals()
        end_time = max((e.time for e in self.events), default=0.0)
        lines = [
            f"#Paraver (01/01/2008 at 00:00):{_us(end_time)}"
            ":1(1):1:1(1:1)"
        ]
        for task_id, (start, end, thread, _name) in sorted(intervals.items()):
            cpu = thread + 1
            lines.append(
                f"1:{cpu}:1:1:{cpu}:{_us(start)}:{_us(end)}:{task_id}"
            )
        type_codes = {
            EventKind.TASK_ADDED: 90000001,
            EventKind.TASK_READY: 90000002,
            EventKind.STEAL: 90000003,
            EventKind.RENAME: 90000004,
            EventKind.BARRIER_ENTER: 90000005,
            EventKind.BARRIER_EXIT: 90000006,
            EventKind.WRITE_BACK: 90000007,
            EventKind.VIOLATION: 90000008,
        }
        for event in self.events:
            code = type_codes.get(event.kind)
            if code is None:
                continue
            cpu = max(event.thread, 0) + 1
            value = event.task_id if event.task_id >= 0 else 0
            lines.append(f"2:{cpu}:1:1:{cpu}:{_us(event.time)}:{code}:{value}")
        lines.append("# event types: " + ", ".join(
            f"{code}={kind}" for kind, code in type_codes.items()
        ))
        return "\n".join(lines)

    def ascii_timeline(self, width: int = 72) -> str:
        """A tiny Paraver-style Gantt: one row per thread."""

        intervals = self.task_intervals()
        if not intervals:
            return "(no task intervals recorded)"
        t0 = min(s for s, _e, _t, _n in intervals.values())
        t1 = max(e for _s, e, _t, _n in intervals.values())
        span = max(t1 - t0, 1e-12)
        rows: dict[int, list[str]] = defaultdict(lambda: [" "] * width)
        for start, end, thread, name in intervals.values():
            lo = int((start - t0) / span * (width - 1))
            hi = max(lo, int((end - t0) / span * (width - 1)))
            glyph = name[0] if name else "#"
            for i in range(lo, hi + 1):
                rows[thread][i] = glyph
        lines = [
            f"thr {thread:2d} |{''.join(cells)}|"
            for thread, cells in sorted(rows.items())
        ]
        return "\n".join(lines)


def _us(seconds: float) -> int:
    """Paraver timestamps are integer microseconds."""

    return int(round(seconds * 1e6))


class _RingBuffer:
    """One thread's bounded event buffer (oldest events dropped)."""

    __slots__ = ("events", "dropped")

    def __init__(self, capacity: int):
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0


class ThreadLocalTracer(Tracer):
    """Tracer whose hot path is per-thread ring buffers.

    The plain :class:`Tracer` appends every event to one shared list —
    under the threaded runtime that list is touched by every worker,
    which both serialises emission (the runtime lock must cover it) and
    bounces the list's cache lines between cores; Álvarez et al. show
    contention in exactly this kind of runtime bookkeeping is a
    first-order scaling cost.  Here each OS thread appends to its own
    bounded ring buffer (registered on first use), and the buffers are
    merged — stably sorted by timestamp — only when the events are
    *read* (at a barrier, at shutdown, or in post-mortem queries).

    The interface is identical to :class:`Tracer`; ``events`` becomes a
    merging property.  The simulator can inject its virtual clock
    unchanged (``tracer.clock = ...``) — single-threaded emission lands
    in one buffer and the stable sort preserves emission order among
    equal virtual timestamps.

    *capacity* bounds each thread's buffer; on overflow the oldest
    events are dropped (counted in :attr:`dropped_events`) so tracing
    can stay on in long-running services without unbounded memory.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = 1 << 16,
    ):
        self.clock = clock or time.perf_counter
        self.capacity = capacity
        self.listener = None  # see Tracer.listener
        self._tls = threading.local()
        self._buffers: list[_RingBuffer] = []
        self._register_lock = threading.Lock()

    def _register(self) -> _RingBuffer:
        ring = _RingBuffer(self.capacity)
        with self._register_lock:
            self._buffers.append(ring)
        self._tls.ring = ring
        return ring

    def _emit(self, kind: str, task=None, thread: int = -1, extra: tuple = ()):
        try:
            ring = self._tls.ring
        except AttributeError:
            ring = self._register()
        buf = ring.events
        if len(buf) == buf.maxlen:
            ring.dropped += 1
        event = TraceEvent(
            time=self.clock(),
            kind=kind,
            task_id=task.task_id if task is not None else -1,
            task_name=task.name if task is not None else "",
            thread=thread,
            extra=extra,
        )
        buf.append(event)
        listener = self.listener
        if listener is not None:
            listener(event)

    def ingest(self, events: Iterable[TraceEvent]) -> None:
        """Append foreign events to the *calling thread's* ring.

        Same bounded-buffer semantics as :meth:`_emit` (oldest dropped,
        drops counted); the timestamp-sorted merge in :attr:`events`
        interleaves them with locally emitted ones.
        """

        try:
            ring = self._tls.ring
        except AttributeError:
            ring = self._register()
        buf = ring.events
        listener = self.listener
        for event in events:
            if len(buf) == buf.maxlen:
                ring.dropped += 1
            buf.append(event)
            if listener is not None:
                listener(event)

    @property
    def events(self) -> list[TraceEvent]:  # type: ignore[override]
        """All events, merged across threads in timestamp order."""

        with self._register_lock:
            buffers = [list(ring.events) for ring in self._buffers]
        merged = [event for buf in buffers for event in buf]
        merged.sort(key=lambda e: e.time)  # stable: ties keep buffer order
        return merged

    @property
    def dropped_events(self) -> int:
        with self._register_lock:
            return sum(ring.dropped for ring in self._buffers)


class NullTracer:
    """No-op stand-in with the same interface (zero overhead paths)."""

    def __init__(self):
        # Per-instance, deliberately: a class-level `events = []` would
        # be shared by every NullTracer in the process, so one runtime
        # poking at another's tracer would see phantom events.
        self.events: list = []

    def __getattr__(self, _name):
        return self._noop

    @staticmethod
    def _noop(*_args, **_kwargs) -> None:
        return None

    def __bool__(self) -> bool:
        # `if self.tracer:` guards skip emission entirely.
        return False
