"""Post-mortem analysis of traces and graphs (the Paraver role).

Section VII.A: the tracing-enabled runtime "records events related to
task creation and execution for post-mortem analysis with the Paraver
tool".  This module provides the analyses a Paraver user would run on
an SMPSs trace: parallelism profiles, per-task-type summaries,
work/span bounds, and load-balance metrics — over either a
:class:`~repro.core.tracing.Tracer` (threaded or virtual time) or a
recorded :class:`~repro.core.graph.TaskGraph`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable

from .graph import TaskGraph
from .tracing import Tracer

__all__ = [
    "TaskTypeSummary",
    "task_type_summary",
    "parallelism_profile",
    "average_parallelism",
    "load_balance",
    "work_and_span",
    "greedy_bounds",
]


@dataclass
class TaskTypeSummary:
    """Aggregate execution statistics for one task type."""

    name: str
    count: int
    total_time: float
    min_time: float
    max_time: float

    @property
    def mean_time(self) -> float:
        return self.total_time / self.count if self.count else 0.0


def task_type_summary(tracer: Tracer) -> dict[str, TaskTypeSummary]:
    """Per-task-type counts and execution-time statistics."""

    buckets: dict[str, list[float]] = defaultdict(list)
    for start, end, _thread, name in tracer.task_intervals().values():
        buckets[name].append(end - start)
    return {
        name: TaskTypeSummary(
            name=name,
            count=len(times),
            total_time=sum(times),
            min_time=min(times),
            max_time=max(times),
        )
        for name, times in buckets.items()
    }


def parallelism_profile(
    tracer: Tracer, samples: int = 50
) -> list[tuple[float, int]]:
    """Number of concurrently running tasks at evenly spaced times.

    The time-sliced "parallelism view" a Paraver user inspects first.
    """

    intervals = list(tracer.task_intervals().values())
    if not intervals or samples < 1:
        return []
    t0 = min(start for start, *_ in intervals)
    t1 = max(end for _s, end, *_ in intervals)
    if t1 <= t0:
        return [(t0, len(intervals))]
    step = (t1 - t0) / samples
    # Sweep-line: +1 at each start, -1 at each end.
    events: list[tuple[float, int]] = []
    for start, end, _thread, _name in intervals:
        events.append((start, +1))
        events.append((end, -1))
    events.sort()
    profile = []
    running = 0
    event_idx = 0
    for i in range(samples + 1):
        t = t0 + i * step
        while event_idx < len(events) and events[event_idx][0] <= t:
            running += events[event_idx][1]
            event_idx += 1
        profile.append((t, running))
    return profile


def average_parallelism(tracer: Tracer) -> float:
    """Busy time divided by elapsed time: mean concurrency achieved."""

    intervals = list(tracer.task_intervals().values())
    if not intervals:
        return 0.0
    busy = sum(end - start for start, end, *_ in intervals)
    t0 = min(start for start, *_ in intervals)
    t1 = max(end for _s, end, *_ in intervals)
    span = t1 - t0
    return busy / span if span > 0 else float(len(intervals))


def load_balance(tracer: Tracer) -> float:
    """Mean busy time across threads divided by the max (1.0 = perfect)."""

    busy = tracer.busy_time_by_thread()
    if not busy:
        return 1.0
    values = list(busy.values())
    peak = max(values)
    return (sum(values) / len(values)) / peak if peak > 0 else 1.0


def work_and_span(
    graph: TaskGraph, weight: Callable[[object], float]
) -> tuple[float, float, float]:
    """(total work, critical-path span, inherent avg parallelism).

    The Brent/work-span quantities of the recorded DAG under the given
    per-task *weight* function (e.g. a cost model's duration).  Requires
    a graph recorded with ``keep_finished=True``.
    """

    work = sum(weight(task) for task in graph)
    span = graph.weighted_critical_path(weight)
    return work, span, (work / span if span > 0 else 0.0)


def greedy_bounds(
    work: float, span: float, cores: int
) -> tuple[float, float]:
    """Classic greedy-scheduler makespan bounds (lower, upper).

    Any greedy schedule (the section III policy is one) satisfies
    ``max(work/P, span) <= makespan <= work/P + span`` — useful to
    sanity-check simulated makespans.
    """

    if cores < 1:
        raise ValueError("need at least one core")
    lower = max(work / cores, span)
    upper = work / cores + span
    return lower, upper
