"""Array regions: the section V.A language extension, fully implemented.

The paper defines: given an N-dimensional array ``A`` with dimensions
``d1..dN``, an array region ``R`` is a list of pairs ``(lj, uj)`` of
inclusive lower/upper bounds, selecting all elements whose index in
every dimension j satisfies ``lj <= ij <= uj``.

The paper *proposes* the syntax but notes its runtime "does not yet
include support for array regions"; this module provides the missing
implementation used by our dependency engine: exact hyper-rectangle
intersection tests decide whether two accesses to the same base object
conflict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = ["Region", "RegionError", "FULL_DIM"]


class RegionError(ValueError):
    """Raised on an invalid region (e.g. lower bound above upper)."""


#: Sentinel inclusive interval meaning "the whole dimension" when the
#: extent is unknown at declaration time.
FULL_DIM: Tuple[int, int] = (0, -1)


@dataclass(frozen=True)
class Region:
    """An N-dimensional hyper-rectangle of inclusive index intervals."""

    intervals: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        for lo, hi in self.intervals:
            if (lo, hi) == FULL_DIM:
                continue
            if lo < 0:
                raise RegionError(f"negative lower bound in region {self.intervals}")
            if hi < lo:
                raise RegionError(
                    f"empty interval ({lo}, {hi}) in region {self.intervals}; "
                    f"upper bound must be >= lower bound"
                )

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_bounds(cls, *pairs: Tuple[int, int]) -> "Region":
        return cls(tuple(pairs))

    @classmethod
    def full(cls, ndim: int = 1) -> "Region":
        """A region covering every element of an *ndim*-dimensional array."""

        return cls(tuple(FULL_DIM for _ in range(ndim)))

    @classmethod
    def from_slice(cls, start: int, stop: int) -> "Region":
        """1-D region from a half-open Python slice ``[start, stop)``."""

        if stop <= start:
            raise RegionError(f"empty slice [{start}, {stop})")
        return cls(((start, stop - 1),))

    # -- predicates -------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.intervals)

    @property
    def is_full(self) -> bool:
        return all(iv == FULL_DIM for iv in self.intervals)

    def overlaps(self, other: "Region") -> bool:
        """True if the two hyper-rectangles share at least one element.

        Regions of different rank refer to different views of the same
        base object; we conservatively report a conflict (the paper's
        runtime would have keyed on raw byte ranges, where any rank
        mismatch still aliases).
        """

        if self.ndim != other.ndim:
            return True
        for (alo, ahi), (blo, bhi) in zip(self.intervals, other.intervals):
            if (alo, ahi) == FULL_DIM or (blo, bhi) == FULL_DIM:
                continue
            if ahi < blo or bhi < alo:
                return False
        return True

    def contains(self, other: "Region") -> bool:
        """True if *other* is entirely inside *self*."""

        if self.ndim != other.ndim:
            return False
        for (alo, ahi), (blo, bhi) in zip(self.intervals, other.intervals):
            if (alo, ahi) == FULL_DIM:
                continue
            if (blo, bhi) == FULL_DIM:
                return False
            if blo < alo or bhi > ahi:
                return False
        return True

    def intersection(self, other: "Region") -> Optional["Region"]:
        """The overlapping sub-region, or ``None`` when disjoint."""

        if self.ndim != other.ndim:
            return None
        out = []
        for (alo, ahi), (blo, bhi) in zip(self.intervals, other.intervals):
            if (alo, ahi) == FULL_DIM:
                out.append((blo, bhi))
                continue
            if (blo, bhi) == FULL_DIM:
                out.append((alo, ahi))
                continue
            lo, hi = max(alo, blo), min(ahi, bhi)
            if hi < lo:
                return None
            out.append((lo, hi))
        return Region(tuple(out))

    def hull(self, other: "Region") -> "Region":
        """Smallest hyper-rectangle containing both regions.

        This is the symbolic-execution hook used by ``repro.check.flow``
        when it summarizes a loop it does not fully unroll: the
        footprints of the folded iterations collapse into their bounding
        box, which over-approximates every concrete access.  A rank
        mismatch degrades to a FULL region — a safe superset of both.
        """

        if self.ndim != other.ndim:
            return Region.full(max(self.ndim, other.ndim))
        out = []
        for (alo, ahi), (blo, bhi) in zip(self.intervals, other.intervals):
            if (alo, ahi) == FULL_DIM or (blo, bhi) == FULL_DIM:
                out.append(FULL_DIM)
            else:
                out.append((min(alo, blo), max(ahi, bhi)))
        return Region(tuple(out))

    def element_count(self) -> Optional[int]:
        """Number of selected elements; ``None`` if any dim is FULL."""

        total = 1
        for lo, hi in self.intervals:
            if (lo, hi) == FULL_DIM:
                return None
            total *= hi - lo + 1
        return total

    # -- conversions ------------------------------------------------------
    def to_slices(self) -> Tuple[slice, ...]:
        """Convert to numpy-style slices (FULL dims become ``slice(None)``)."""

        return tuple(
            slice(None) if (lo, hi) == FULL_DIM else slice(lo, hi + 1)
            for lo, hi in self.intervals
        )

    def resolved_against(self, shape: Sequence[int]) -> "Region":
        """Replace FULL sentinels with the concrete extents of *shape*."""

        if len(shape) < self.ndim:
            raise RegionError(
                f"region of rank {self.ndim} cannot be resolved against "
                f"shape {tuple(shape)}"
            )
        out = []
        for (lo, hi), extent in zip(self.intervals, shape):
            if (lo, hi) == FULL_DIM:
                out.append((0, extent - 1))
            else:
                if hi >= extent:
                    raise RegionError(
                        f"region interval ({lo}, {hi}) exceeds extent {extent}"
                    )
                out.append((lo, hi))
        return Region(tuple(out))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [
            "{}" if iv == FULL_DIM else "{%d..%d}" % iv for iv in self.intervals
        ]
        return "".join(parts)
