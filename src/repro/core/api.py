"""User-facing programming model: the ``@css_task`` decorator.

The Python binding of the paper's annotation::

    #pragma css task input(a, b) inout(c)
    void sgemm_t(float a[M][M], float b[M][M], float c[M][M]);

becomes::

    @css_task("input(a, b) inout(c)")
    def sgemm_t(a, b, c):
        c += a @ b

A decorated function behaves exactly like the paper's dual-compilation
model: with no active runtime it *is* the plain sequential function
("the same C sequential code can be compiled with a regular compiler
and run sequentially"); inside an :class:`~repro.core.runtime.SmpssRuntime`
(or recording runtime) context, calls become asynchronous task
submissions with run-time dependency analysis.
"""

from __future__ import annotations

import functools
import inspect
import threading
from typing import Callable, Optional

from .pragma import parse_pragma
from .task import TaskDefinition

__all__ = [
    "css_task",
    "current_runtime",
    "push_runtime",
    "pop_runtime",
    "discard_runtime",
    "barrier",
    "wait_on",
]


# The active-runtime stack, kept PER THREAD.  The programming model is
# single-main-thread (the paper's main program) — and with per-thread
# stacks every thread that enters a runtime is the main program of its
# own submission stream, which is what lets many served sessions
# (:mod:`repro.serve`) run concurrently in one process.  A css_task
# call on a thread with no active runtime simply runs sequentially,
# exactly as before.
#
# Runtimes that own process-global resources (SmpssRuntime and the
# recorder share one task-id counter; the mp backend forks a worker
# fleet) additionally hold the process-wide *exclusive* slot below, so
# the historical guard — one in-process runtime at a time, entered and
# driven from one thread — still fires for them.  A runtime opts out
# by setting class attribute ``exclusive = False`` (served sessions:
# they keep no process-global state, all their ids live server-side).
_tls = threading.local()
_exclusive_lock = threading.Lock()
_exclusive_owner: Optional[int] = None
_exclusive_depth = 0


def _thread_stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def current_runtime():
    """The innermost runtime active on *this thread*, or ``None``
    (sequential mode)."""

    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


def push_runtime(runtime) -> None:
    global _exclusive_owner, _exclusive_depth
    if getattr(runtime, "exclusive", True):
        with _exclusive_lock:
            owner = threading.get_ident()
            if _exclusive_depth and _exclusive_owner != owner:
                raise RuntimeError(
                    "a runtime is already active on another thread; the "
                    "SMPSs main program is single-threaded"
                )
            _exclusive_owner = owner
            _exclusive_depth += 1
    _thread_stack().append(runtime)


def _release_exclusive(runtime) -> None:
    global _exclusive_owner, _exclusive_depth
    if getattr(runtime, "exclusive", True):
        with _exclusive_lock:
            _exclusive_depth -= 1
            if _exclusive_depth <= 0:
                _exclusive_depth = 0
                _exclusive_owner = None


def pop_runtime(runtime) -> None:
    stack = getattr(_tls, "stack", None)
    if not stack or stack[-1] is not runtime:
        raise RuntimeError("runtime stack corruption: mismatched pop")
    stack.pop()
    _release_exclusive(runtime)


def discard_runtime(runtime) -> None:
    """Remove *runtime* from this thread's stack wherever it sits;
    never raises.

    The defensive complement of :func:`pop_runtime`: runtimes call it
    from ``__exit__`` so that an exception unwinding mid-``with`` (or a
    shutdown that died before its own pop) cannot leave a dead stack
    entry — and with it a stale exclusive slot that would wedge every
    later runtime behind the single-main-thread guard.  A no-op when
    the runtime is not on the stack.
    """

    stack = getattr(_tls, "stack", None)
    if not stack:
        return
    while runtime in stack:
        stack.remove(runtime)
        _release_exclusive(runtime)


def _neutralise_stack() -> None:
    """Forked-child disarm: drop every inherited runtime activation.

    Called by the mp worker entry point right after ``fork`` — the
    child must look sequential regardless of what the master's forking
    thread had active, and the exclusive slot must be free.
    """

    global _exclusive_owner, _exclusive_depth, _tls, _exclusive_lock
    _tls = threading.local()
    # Rebound, not acquired: another master thread could have held the
    # lock at fork time, and a copied held lock never unlocks.
    _exclusive_lock = threading.Lock()
    _exclusive_owner = None
    _exclusive_depth = 0


def barrier() -> None:
    """``#pragma css barrier``: wait for all tasks (no-op sequentially)."""

    runtime = current_runtime()
    if runtime is not None:
        runtime.barrier()


def wait_on(obj):
    """``#pragma css wait on(obj)``: a partial barrier on one datum.

    Waits until the last already-submitted writer of *obj* has finished
    and returns the up-to-date storage (the renamed buffer when
    renaming redirected the writes, *obj* itself otherwise) — so the
    main program can read one result, e.g. a pivot index in LU, while
    every other task keeps running.

    Sequential semantics are preserved in every mode: with no active
    runtime the call is a no-op returning *obj*; inside a task body
    (where task calls run inline and data is already up to date) it is
    likewise a no-op.
    """

    runtime = current_runtime()
    if runtime is None:
        return obj
    in_body = getattr(runtime, "in_task_body", None)
    if in_body is not None and in_body():
        return obj
    return runtime.acquire(obj)


def css_task(pragma: str = "", constants: Optional[dict] = None) -> Callable:
    """Declare a function as an SMPSs task.

    *pragma* is the clause list of the ``#pragma css task`` construct
    (see :mod:`repro.core.pragma`).  *constants* supplies values for
    names used in dimension/region expressions that are not parameters
    (the paper's compile-time constants such as ``N`` and ``M``).

    The returned wrapper exposes:

    * ``.definition`` — the :class:`TaskDefinition`;
    * ``.pragma`` — the parsed pragma;
    * ``.sequential(*args)`` — always call the plain function.
    """

    parsed = parse_pragma(pragma)

    def decorate(func: Callable) -> Callable:
        signature = inspect.signature(func)
        _validate_signature(func, signature, parsed)
        definition = TaskDefinition(
            func=func, params=parsed.params, high_priority=parsed.high_priority
        )

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            runtime = current_runtime()
            if runtime is None:
                return func(*args, **kwargs)
            # "SMPSs treats task calls inside tasks as normal function
            # calls" (sections VII.B/D): a call made from within an
            # executing task body runs inline, it does not nest.  The
            # try/except is free when the runtime has the method (all
            # bundled runtimes do) — cheaper per call than getattr.
            try:
                inline = runtime.in_task_body()
            except AttributeError:
                inline = False
            if inline:
                return func(*args, **kwargs)
            return runtime.submit(definition, args, kwargs)

        wrapper.definition = definition  # type: ignore[attr-defined]
        wrapper.pragma = parsed  # type: ignore[attr-defined]
        wrapper.sequential = func  # type: ignore[attr-defined]
        wrapper.constants = constants or {}  # type: ignore[attr-defined]
        if constants:
            # Constants ride on the definition so every runtime sees them.
            definition.constants = dict(constants)  # type: ignore[attr-defined]
        return wrapper

    return decorate


def _validate_signature(func, signature: inspect.Signature, parsed) -> None:
    bad_kinds = {
        inspect.Parameter.VAR_POSITIONAL: "*args",
        inspect.Parameter.VAR_KEYWORD: "**kwargs",
        inspect.Parameter.KEYWORD_ONLY: "keyword-only parameters",
    }
    for param in signature.parameters.values():
        if param.kind in bad_kinds:
            raise TypeError(
                f"task {func.__name__!r}: {bad_kinds[param.kind]} are not "
                f"supported in task signatures (tasks mirror C functions "
                f"with plain positional parameters)"
            )
    names = set(signature.parameters)
    for spec in parsed.params:
        if spec.name not in names:
            raise TypeError(
                f"task {func.__name__!r}: pragma declares parameter "
                f"{spec.name!r} which is not in the function signature"
            )
