"""User-facing programming model: the ``@css_task`` decorator.

The Python binding of the paper's annotation::

    #pragma css task input(a, b) inout(c)
    void sgemm_t(float a[M][M], float b[M][M], float c[M][M]);

becomes::

    @css_task("input(a, b) inout(c)")
    def sgemm_t(a, b, c):
        c += a @ b

A decorated function behaves exactly like the paper's dual-compilation
model: with no active runtime it *is* the plain sequential function
("the same C sequential code can be compiled with a regular compiler
and run sequentially"); inside an :class:`~repro.core.runtime.SmpssRuntime`
(or recording runtime) context, calls become asynchronous task
submissions with run-time dependency analysis.
"""

from __future__ import annotations

import functools
import inspect
import threading
from typing import Callable, Optional

from .pragma import parse_pragma
from .task import TaskDefinition

__all__ = [
    "css_task",
    "current_runtime",
    "push_runtime",
    "pop_runtime",
    "discard_runtime",
    "barrier",
    "wait_on",
]


# The active-runtime stack.  The programming model is single-main-thread
# (the paper's main program), so a plain module-level stack suffices;
# the guard catches accidental multi-thread submission.
_stack: list = []
_stack_owner: Optional[int] = None
_stack_lock = threading.Lock()


def current_runtime():
    """The innermost active runtime, or ``None`` (sequential mode)."""

    return _stack[-1] if _stack else None


def push_runtime(runtime) -> None:
    global _stack_owner
    with _stack_lock:
        owner = threading.get_ident()
        if _stack and _stack_owner != owner:
            raise RuntimeError(
                "a runtime is already active on another thread; the SMPSs "
                "main program is single-threaded"
            )
        _stack_owner = owner
        _stack.append(runtime)


def pop_runtime(runtime) -> None:
    global _stack_owner
    with _stack_lock:
        if not _stack or _stack[-1] is not runtime:
            raise RuntimeError("runtime stack corruption: mismatched pop")
        _stack.pop()
        if not _stack:
            _stack_owner = None


def discard_runtime(runtime) -> None:
    """Remove *runtime* from the stack wherever it sits; never raises.

    The defensive complement of :func:`pop_runtime`: runtimes call it
    from ``__exit__`` so that an exception unwinding mid-``with`` (or a
    shutdown that died before its own pop) cannot leave a dead stack
    entry — and with it a stale ``_stack_owner`` that would wedge every
    later runtime behind the single-main-thread guard.  A no-op when
    the runtime is not on the stack.
    """

    global _stack_owner
    with _stack_lock:
        while runtime in _stack:
            _stack.remove(runtime)
        if not _stack:
            _stack_owner = None


def barrier() -> None:
    """``#pragma css barrier``: wait for all tasks (no-op sequentially)."""

    runtime = current_runtime()
    if runtime is not None:
        runtime.barrier()


def wait_on(obj):
    """``#pragma css wait on(obj)``: a partial barrier on one datum.

    Waits until the last already-submitted writer of *obj* has finished
    and returns the up-to-date storage (the renamed buffer when
    renaming redirected the writes, *obj* itself otherwise) — so the
    main program can read one result, e.g. a pivot index in LU, while
    every other task keeps running.

    Sequential semantics are preserved in every mode: with no active
    runtime the call is a no-op returning *obj*; inside a task body
    (where task calls run inline and data is already up to date) it is
    likewise a no-op.
    """

    runtime = current_runtime()
    if runtime is None:
        return obj
    in_body = getattr(runtime, "in_task_body", None)
    if in_body is not None and in_body():
        return obj
    return runtime.acquire(obj)


def css_task(pragma: str = "", constants: Optional[dict] = None) -> Callable:
    """Declare a function as an SMPSs task.

    *pragma* is the clause list of the ``#pragma css task`` construct
    (see :mod:`repro.core.pragma`).  *constants* supplies values for
    names used in dimension/region expressions that are not parameters
    (the paper's compile-time constants such as ``N`` and ``M``).

    The returned wrapper exposes:

    * ``.definition`` — the :class:`TaskDefinition`;
    * ``.pragma`` — the parsed pragma;
    * ``.sequential(*args)`` — always call the plain function.
    """

    parsed = parse_pragma(pragma)

    def decorate(func: Callable) -> Callable:
        signature = inspect.signature(func)
        _validate_signature(func, signature, parsed)
        definition = TaskDefinition(
            func=func, params=parsed.params, high_priority=parsed.high_priority
        )

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            runtime = current_runtime()
            if runtime is None:
                return func(*args, **kwargs)
            # "SMPSs treats task calls inside tasks as normal function
            # calls" (sections VII.B/D): a call made from within an
            # executing task body runs inline, it does not nest.  The
            # try/except is free when the runtime has the method (all
            # bundled runtimes do) — cheaper per call than getattr.
            try:
                inline = runtime.in_task_body()
            except AttributeError:
                inline = False
            if inline:
                return func(*args, **kwargs)
            return runtime.submit(definition, args, kwargs)

        wrapper.definition = definition  # type: ignore[attr-defined]
        wrapper.pragma = parsed  # type: ignore[attr-defined]
        wrapper.sequential = func  # type: ignore[attr-defined]
        wrapper.constants = constants or {}  # type: ignore[attr-defined]
        if constants:
            # Constants ride on the definition so every runtime sees them.
            definition.constants = dict(constants)  # type: ignore[attr-defined]
        return wrapper

    return decorate


def _validate_signature(func, signature: inspect.Signature, parsed) -> None:
    bad_kinds = {
        inspect.Parameter.VAR_POSITIONAL: "*args",
        inspect.Parameter.VAR_KEYWORD: "**kwargs",
        inspect.Parameter.KEYWORD_ONLY: "keyword-only parameters",
    }
    for param in signature.parameters.values():
        if param.kind in bad_kinds:
            raise TypeError(
                f"task {func.__name__!r}: {bad_kinds[param.kind]} are not "
                f"supported in task signatures (tasks mirror C functions "
                f"with plain positional parameters)"
            )
    names = set(signature.parameters)
    for spec in parsed.params:
        if spec.name not in names:
            raise TypeError(
                f"task {func.__name__!r}: pragma declares parameter "
                f"{spec.name!r} which is not in the function signature"
            )
