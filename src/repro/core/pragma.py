"""Parser for the ``#pragma css task`` clause grammar (sections II, V.A).

The paper defines the task construct as::

    # pragma css task [clause [clause] ...]

where *clause* is one of ``input(parameter-list)``,
``output(parameter-list)``, ``inout(parameter-list)`` or
``highpriority``.  Parameters may carry *dimension specifiers*
(``a[M][M]``) and, with the section V.A language extension, *array
region specifiers*::

    {l..u} | {l:L} | {}

This module implements that grammar for the Python binding: the string
passed to :func:`repro.css_task` is exactly the clause list that would
follow ``#pragma css task`` in C.  Dimension and region bound
expressions are a C99 arithmetic subset (integers, parameter names,
``+ - * / %`` and parentheses) evaluated at invocation time against the
actual argument values — the paper requires this because bounds like
``data{i1..j1}`` reference other parameters.

We additionally accept an ``opaque(parameter-list)`` clause as the
binding of the paper's ``void *`` opaque pointers (Python has no
pointer types to infer it from).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from .task import Direction

__all__ = [
    "PragmaError",
    "Expr",
    "RegionSpec",
    "ParamSpec",
    "ParsedPragma",
    "parse_pragma",
    "parse_expression",
]


class PragmaError(ValueError):
    """Raised on a malformed pragma clause string."""


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>      [\s\\]+            )
  | (?P<INT>     \d+                )
  | (?P<IDENT>   [A-Za-z_]\w*       )
  | (?P<DOTDOT>  \.\.               )
  | (?P<SYM>     [()\[\]{},:+\-*/%] )
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise PragmaError(
                f"unexpected character {text[pos]!r} at position {pos} in pragma {text!r}"
            )
        kind = m.lastgroup or ""
        if kind != "WS":
            tokens.append(_Token(kind, m.group(), pos))
        pos = m.end()
    return tokens


# ---------------------------------------------------------------------------
# Expressions (C99 arithmetic subset)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """A parsed bound/dimension expression.

    Stored as a tiny AST of nested tuples:

    * ``("int", value)``
    * ``("name", identifier)``
    * ``("unary", op, operand)``
    * ``("binop", op, left, right)``
    """

    ast: tuple
    source: str

    def evaluate(self, env: dict) -> int:
        """Evaluate against *env* (parameter name -> value)."""

        return _eval_ast(self.ast, env, self.source)

    def names(self) -> set[str]:
        """All identifiers referenced by the expression."""

        found: set[str] = set()
        _collect_names(self.ast, found)
        return found

    def evaluate_symbolic(self, env: dict):
        """Evaluate over an arbitrary arithmetic domain.

        Like :meth:`evaluate`, but *env* values may be any objects
        implementing ``+ - * / %`` (e.g. the intervals of
        :mod:`repro.check.intervals`); plain ints keep the exact C99
        semantics of :meth:`evaluate`.  This is the symbolic-execution
        hook the whole-program analyzer uses to resolve region bounds
        under loop variables it has summarized rather than unrolled.
        """

        return _eval_symbolic(self.ast, env, self.source)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.source


def _eval_ast(ast: tuple, env: dict, source: str):
    kind = ast[0]
    if kind == "int":
        return ast[1]
    if kind == "name":
        try:
            value = env[ast[1]]
        except KeyError:
            raise PragmaError(
                f"expression {source!r} references unknown parameter {ast[1]!r}"
            ) from None
        return _as_int(value, ast[1], source)
    if kind == "unary":
        operand = _eval_ast(ast[2], env, source)
        return -operand if ast[1] == "-" else +operand
    if kind == "binop":
        op = ast[1]
        left = _eval_ast(ast[2], env, source)
        right = _eval_ast(ast[3], env, source)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise PragmaError(f"division by zero evaluating {source!r}")
            # C99 integer division truncates toward zero.
            q = abs(left) // abs(right)
            return q if (left >= 0) == (right >= 0) else -q
        if op == "%":
            if right == 0:
                raise PragmaError(f"division by zero evaluating {source!r}")
            return left - right * _eval_ast(("binop", "/", ("int", left), ("int", right)), env, source)
    raise PragmaError(f"corrupt expression AST for {source!r}")  # pragma: no cover


def _eval_symbolic(ast: tuple, env: dict, source: str):
    """Evaluate an expression AST with domain-supplied arithmetic.

    Integer operands keep C99 semantics (delegating to
    :func:`_eval_ast`); anything else uses the operand's own operators,
    so abstract domains (intervals) flow through transparently.
    """

    kind = ast[0]
    if kind == "int":
        return ast[1]
    if kind == "name":
        try:
            return env[ast[1]]
        except KeyError:
            raise PragmaError(
                f"expression {source!r} references unknown parameter {ast[1]!r}"
            ) from None
    if kind == "unary":
        operand = _eval_symbolic(ast[2], env, source)
        return -operand if ast[1] == "-" else +operand
    if kind == "binop":
        op = ast[1]
        left = _eval_symbolic(ast[2], env, source)
        right = _eval_symbolic(ast[3], env, source)
        if isinstance(left, int) and isinstance(right, int):
            return _eval_ast(
                ("binop", op, ("int", left), ("int", right)), env, source
            )
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "%":
            return left % right
    raise PragmaError(f"corrupt expression AST for {source!r}")  # pragma: no cover


def _as_int(value, name: str, source: str) -> int:
    try:
        as_int = int(value)
    except (TypeError, ValueError):
        raise PragmaError(
            f"parameter {name!r} used in expression {source!r} is not an integer"
        ) from None
    return as_int


def _collect_names(ast: tuple, out: set) -> None:
    kind = ast[0]
    if kind == "name":
        out.add(ast[1])
    elif kind == "unary":
        _collect_names(ast[2], out)
    elif kind == "binop":
        _collect_names(ast[2], out)
        _collect_names(ast[3], out)


class _ExprParser:
    """Recursive-descent parser for the arithmetic subset."""

    def __init__(self, tokens: Sequence[_Token], source: str, start: int = 0):
        self.tokens = tokens
        self.source = source
        self.i = start

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def advance(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise PragmaError(f"unexpected end of expression in {self.source!r}")
        self.i += 1
        return tok

    def parse(self) -> tuple:
        return self._additive()

    def _additive(self) -> tuple:
        node = self._multiplicative()
        while True:
            tok = self.peek()
            if tok and tok.kind == "SYM" and tok.text in "+-":
                self.advance()
                node = ("binop", tok.text, node, self._multiplicative())
            else:
                return node

    def _multiplicative(self) -> tuple:
        node = self._unary()
        while True:
            tok = self.peek()
            if tok and tok.kind == "SYM" and tok.text in "*/%":
                self.advance()
                node = ("binop", tok.text, node, self._unary())
            else:
                return node

    def _unary(self) -> tuple:
        tok = self.peek()
        if tok and tok.kind == "SYM" and tok.text in "+-":
            self.advance()
            return ("unary", tok.text, self._unary())
        return self._primary()

    def _primary(self) -> tuple:
        tok = self.advance()
        if tok.kind == "INT":
            return ("int", int(tok.text))
        if tok.kind == "IDENT":
            return ("name", tok.text)
        if tok.kind == "SYM" and tok.text == "(":
            node = self._additive()
            closing = self.advance()
            if not (closing.kind == "SYM" and closing.text == ")"):
                raise PragmaError(f"missing ')' in expression in {self.source!r}")
            return node
        raise PragmaError(
            f"unexpected token {tok.text!r} at position {tok.pos} in {self.source!r}"
        )


def parse_expression(text: str) -> Expr:
    """Parse a standalone bound expression such as ``i+2*quarter-1``."""

    tokens = _tokenize(text)
    if not tokens:
        raise PragmaError("empty expression")
    parser = _ExprParser(tokens, text)
    ast = parser.parse()
    if parser.i != len(tokens):
        stray = tokens[parser.i]
        raise PragmaError(f"trailing input {stray.text!r} in expression {text!r}")
    return Expr(ast, text)


# ---------------------------------------------------------------------------
# Region specifiers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegionSpec:
    """One per-dimension region specifier (section V.A).

    Three surface forms, normalised here:

    * ``{l..u}``  -> ``lower``, ``upper`` set, ``is_length=False``
    * ``{l:L}``   -> ``lower`` set, ``upper`` holds the length,
      ``is_length=True``
    * ``{}``      -> ``full=True`` ("the dimension will be fully
      accessed")
    """

    full: bool = False
    lower: Optional[Expr] = None
    upper: Optional[Expr] = None
    is_length: bool = False

    def bounds(self, env: dict, extent: Optional[int] = None) -> tuple[int, int]:
        """Resolve to inclusive ``(lo, hi)`` bounds.

        *extent*, when known, resolves ``{}`` to ``(0, extent - 1)``;
        an unknown extent resolves to the sentinel ``(0, -1)`` meaning
        "whole dimension" (handled by :mod:`repro.core.regions`).
        """

        if self.full:
            if extent is None:
                return (0, -1)
            return (0, extent - 1)
        assert self.lower is not None and self.upper is not None
        lo = self.lower.evaluate(env)
        if self.is_length:
            length = self.upper.evaluate(env)
            if length < 0:
                raise PragmaError(f"negative region length {length}")
            return (lo, lo + length - 1)
        return (lo, self.upper.evaluate(env))

    def symbolic_bounds(self, env: dict, extent=None) -> Optional[tuple]:
        """Resolve bounds over an arbitrary arithmetic domain.

        Like :meth:`bounds`, but *env* values (and the returned pair)
        may be abstract — e.g. :class:`repro.check.intervals.Interval`
        objects standing for a summarized loop variable.  Returns
        ``None`` for ``{}`` with unknown extent ("the whole dimension").
        """

        if self.full:
            if extent is None:
                return None
            return (0, extent - 1)
        assert self.lower is not None and self.upper is not None
        lo = self.lower.evaluate_symbolic(env)
        if self.is_length:
            return (lo, lo + self.upper.evaluate_symbolic(env) - 1)
        return (lo, self.upper.evaluate_symbolic(env))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.full:
            return "{}"
        sep = ":" if self.is_length else ".."
        return "{%s%s%s}" % (self.lower, sep, self.upper)


# ---------------------------------------------------------------------------
# Parameter specs and the pragma itself
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParamSpec:
    """One parameter appearance inside a directionality clause."""

    name: str
    direction: Direction
    #: dimension specifiers, outermost first (may be empty)
    dims: tuple[Expr, ...] = ()
    #: region specifiers, one per dimension (empty = whole object)
    regions: tuple[RegionSpec, ...] = ()

    @property
    def has_region(self) -> bool:
        return bool(self.regions)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "".join(f"[{d}]" for d in self.dims)
        regions = "".join(str(r) for r in self.regions)
        return f"{self.name}{dims}{regions}"


@dataclass
class ParsedPragma:
    """The full parsed clause list of one task construct."""

    params: list[ParamSpec] = field(default_factory=list)
    high_priority: bool = False
    source: str = ""

    def specs_for(self, name: str) -> list[ParamSpec]:
        return [p for p in self.params if p.name == name]

    @property
    def declared_names(self) -> list[str]:
        seen: list[str] = []
        for p in self.params:
            if p.name not in seen:
                seen.append(p.name)
        return seen


_DIRECTIONS = {
    "input": Direction.INPUT,
    "output": Direction.OUTPUT,
    "inout": Direction.INOUT,
    "opaque": Direction.OPAQUE,
}


class _PragmaParser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.i = 0

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def advance(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise PragmaError(f"unexpected end of pragma {self.text!r}")
        self.i += 1
        return tok

    def expect_sym(self, sym: str) -> None:
        tok = self.advance()
        if not (tok.kind == "SYM" and tok.text == sym):
            raise PragmaError(
                f"expected {sym!r} at position {tok.pos} in pragma {self.text!r}, "
                f"got {tok.text!r}"
            )

    def parse(self) -> ParsedPragma:
        pragma = ParsedPragma(source=self.text)
        while self.peek() is not None:
            tok = self.advance()
            if tok.kind != "IDENT":
                raise PragmaError(
                    f"expected a clause name at position {tok.pos} in {self.text!r}"
                )
            word = tok.text
            if word == "highpriority":
                pragma.high_priority = True
                continue
            if word == "task":
                # Tolerate "task input(...)" so the full pragma line
                # ("#pragma css task ...") can be passed verbatim.
                continue
            if word == "css":
                continue
            if word not in _DIRECTIONS:
                raise PragmaError(
                    f"unknown clause {word!r} in pragma {self.text!r} "
                    f"(expected input/output/inout/opaque/highpriority)"
                )
            direction = _DIRECTIONS[word]
            self.expect_sym("(")
            pragma.params.extend(self._param_list(direction))
            self.expect_sym(")")
        self._validate(pragma)
        return pragma

    def _param_list(self, direction: Direction) -> Iterator[ParamSpec]:
        specs: list[ParamSpec] = []
        while True:
            specs.append(self._param(direction))
            tok = self.peek()
            if tok and tok.kind == "SYM" and tok.text == ",":
                self.advance()
                continue
            return specs

    def _param(self, direction: Direction) -> ParamSpec:
        tok = self.advance()
        if tok.kind != "IDENT":
            raise PragmaError(
                f"expected a parameter name at position {tok.pos} in {self.text!r}"
            )
        name = tok.text
        dims: list[Expr] = []
        while True:
            nxt = self.peek()
            if nxt and nxt.kind == "SYM" and nxt.text == "[":
                self.advance()
                dims.append(self._bounded_expr("]"))
            else:
                break
        regions: list[RegionSpec] = []
        while True:
            nxt = self.peek()
            if nxt and nxt.kind == "SYM" and nxt.text == "{":
                self.advance()
                regions.append(self._region())
            else:
                break
        return ParamSpec(name, direction, tuple(dims), tuple(regions))

    def _bounded_expr(self, closing: str) -> Expr:
        start = self.i
        parser = _ExprParser(self.tokens, self.text, start)
        ast = parser.parse()
        self.i = parser.i
        close_tok = self.advance()
        if not (close_tok.kind == "SYM" and close_tok.text == closing):
            raise PragmaError(
                f"expected {closing!r} at position {close_tok.pos} in {self.text!r}"
            )
        source = " ".join(t.text for t in self.tokens[start : self.i - 1])
        return Expr(ast, source)

    def _region(self) -> RegionSpec:
        tok = self.peek()
        if tok and tok.kind == "SYM" and tok.text == "}":
            self.advance()
            return RegionSpec(full=True)
        lower = self._region_expr()
        sep = self.advance()
        if sep.kind == "DOTDOT":
            upper = self._region_expr()
            self.expect_sym("}")
            return RegionSpec(lower=lower, upper=upper, is_length=False)
        if sep.kind == "SYM" and sep.text == ":":
            length = self._region_expr()
            self.expect_sym("}")
            return RegionSpec(lower=lower, upper=length, is_length=True)
        raise PragmaError(
            f"expected '..' or ':' in region specifier at position {sep.pos} "
            f"in {self.text!r}"
        )

    def _region_expr(self) -> Expr:
        start = self.i
        parser = _ExprParser(self.tokens, self.text, start)
        ast = parser.parse()
        self.i = parser.i
        source = " ".join(t.text for t in self.tokens[start : self.i])
        return Expr(ast, source)

    def _validate(self, pragma: ParsedPragma) -> None:
        directions: dict[str, set[Direction]] = {}
        for spec in pragma.params:
            directions.setdefault(spec.name, set()).add(spec.direction)
        for name, dirs in directions.items():
            if Direction.OPAQUE in dirs and len(dirs) > 1:
                raise PragmaError(
                    f"parameter {name!r} is opaque and also has a "
                    f"directionality clause in {self.text!r}"
                )
        # A parameter appearing several times must use regions for every
        # appearance (section V.A) — otherwise the appearances are
        # ambiguous duplicates.  The error names the parameter and the
        # clauses so the conflicting declarations are easy to find.
        appearances: dict[str, list] = {}
        for spec in pragma.params:
            appearances.setdefault(spec.name, []).append(spec)
        for name, specs in appearances.items():
            if len(specs) == 1 or all(s.has_region for s in specs):
                continue
            clauses = [s.direction.value for s in specs]
            if len(set(clauses)) == 1:
                times = "twice" if len(specs) == 2 else f"{len(specs)} times"
                where = f"{times} in the {clauses[0]!r} clause"
            else:
                listed = " and ".join(repr(c) for c in dict.fromkeys(clauses))
                where = f"in both the {listed} clauses"
            raise PragmaError(
                f"parameter {name!r} is listed {where} of {self.text!r}; "
                f"a parameter may appear in several directionality clauses "
                f"only when every appearance carries an array region "
                f"specifier"
            )
        for spec in pragma.params:
            if spec.regions and spec.dims and len(spec.regions) != len(spec.dims):
                raise PragmaError(
                    f"parameter {spec.name!r} has {len(spec.dims)} dimension "
                    f"specifiers but {len(spec.regions)} region specifiers "
                    f"in {self.text!r} (one region per dimension required)"
                )


def parse_pragma(text: str) -> ParsedPragma:
    """Parse the clause list of a ``#pragma css task`` construct.

    >>> p = parse_pragma("input(a, b) inout(c)")
    >>> [str(s) for s in p.params]
    ['a', 'b', 'c']
    >>> p = parse_pragma("inout(data{i..j}) input(i, j) highpriority")
    >>> p.high_priority
    True
    """

    return _PragmaParser(text).parse()
