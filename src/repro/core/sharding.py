"""Datum-address lock striping for concurrent dependency analysis.

The single-program runtime serialises its whole dependency subsystem
behind one ``_tracker_lock`` — correct, and cheap when one main thread
submits.  A task-graph *service* (:mod:`repro.serve`) analyses many
independent submissions concurrently, and one global lock would make
every tenant contend with every other on the analysis path.

The fix is the classic one (Myrmics shards its dependency tracking by
address range): stripe the tracker locks by **datum address**.  Each
submission owns a :class:`GraphDomain` — a private
:class:`~repro.core.graph.TaskGraph` + :class:`DependencyTracker`
pair, so version chains and renaming namespaces never leak between
sessions — and the domain's *lock* is picked from a fixed
:class:`ShardSet` by hashing the addresses of the data it touches.
Two submissions whose data lives at different addresses hash to
different stripes with probability ``1 - 1/num_shards`` and never
contend; two submissions over the *same* data hash to the same stripe
deterministically, which is exactly when serialising them is the
conservative, safe answer.

The striping is over locks, not over tracker state: correctness never
depends on the hash (every domain is fully private), only contention
does.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from .dependencies import DependencyTracker, TrackerConfig
from .graph import TaskGraph

__all__ = [
    "DEFAULT_NUM_SHARDS",
    "address_hash",
    "shard_index",
    "TrackerShard",
    "ShardSet",
    "GraphDomain",
]

DEFAULT_NUM_SHARDS = 16

#: 64-bit golden-ratio multiplier (splitmix64 finalizer constant).
_GOLDEN = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1


def address_hash(key: int) -> int:
    """Scramble one object address into a well-mixed 64-bit value.

    ``id()`` values share allocator alignment in their low bits and a
    common heap prefix in their high bits; a splitmix64-style finalizer
    spreads both so the stripe index can use any bit range.
    """

    x = (key * _GOLDEN) & _MASK
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def shard_index(keys: Iterable[int], num_shards: int) -> int:
    """Deterministic stripe for a datum *set*.

    XOR-folding the scrambled addresses makes the result independent
    of iteration order, so the same data always lands on the same
    stripe no matter how the caller enumerates it.
    """

    folded = 0
    for key in keys:
        folded ^= address_hash(key)
    return folded % num_shards


class TrackerShard:
    """One lock stripe plus its occupancy accounting."""

    __slots__ = ("index", "lock", "domains", "acquisitions")

    def __init__(self, index: int):
        self.index = index
        self.lock = threading.Lock()
        #: Live GraphDomain count on this stripe (under the set's lock).
        self.domains = 0
        #: Total domains ever placed here (load-balance telemetry).
        self.acquisitions = 0


class ShardSet:
    """A fixed array of tracker-lock stripes."""

    def __init__(self, num_shards: int = DEFAULT_NUM_SHARDS):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._shards = [TrackerShard(i) for i in range(num_shards)]
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._shards)

    def __iter__(self):
        return iter(self._shards)

    def shard_for(self, keys: Iterable[int]) -> TrackerShard:
        """The stripe owning the datum set *keys* (object addresses)."""

        shard = self._shards[shard_index(keys, len(self._shards))]
        with self._lock:
            shard.domains += 1
            shard.acquisitions += 1
        return shard

    def release(self, shard: TrackerShard) -> None:
        with self._lock:
            shard.domains -= 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "num_shards": len(self._shards),
                "live_domains": [s.domains for s in self._shards],
                "acquisitions": [s.acquisitions for s in self._shards],
            }


class GraphDomain:
    """One isolated dependency domain riding one lock stripe.

    Owns a private graph + tracker (its own version chains, renaming
    namespace, and memory accounting) and funnels every mutation
    through ``shard.lock``.  The analysis/completion discipline is the
    same as the in-process runtime's: readiness is decided while still
    holding the tracker lock, so a completion racing an analysis can
    never double-release a task.
    """

    def __init__(
        self,
        shard: TrackerShard,
        *,
        tracker_config: Optional[TrackerConfig] = None,
        tracer=None,
    ):
        self.shard = shard
        self.graph = TaskGraph(keep_finished=False, tracer=tracer)
        self.tracker = DependencyTracker(
            self.graph,
            config=tracker_config or TrackerConfig(),
            tracer=tracer,
        )

    # ------------------------------------------------------------------
    def analyze_batch(self, tasks) -> list:
        """Analyze *tasks* in submission order; return the ready set.

        Nothing executes from this domain until the caller releases
        the returned tasks, so capturing readiness after the whole
        batch (still under the stripe lock) is race-free.
        """

        with self.shard.lock:
            for task in tasks:
                self.tracker.analyze(task)
            return [t for t in tasks if t.num_pending_deps == 0]

    def complete(self, task) -> tuple[list, int]:
        """Record one completion; return (newly_ready, still_pending)."""

        with self.shard.lock:
            newly_ready = self.graph.complete(task)
            self.tracker.release_after(task)
            return newly_ready, self.graph.pending_count

    def write_back(self) -> int:
        """Barrier semantics: restore user-visible data, drop chains."""

        with self.shard.lock:
            count = self.tracker.write_back_all()
            self.tracker.reset()
            return count

    @property
    def renamed_bytes(self) -> int:
        return self.tracker.renamed_bytes
