"""Task model for the SMPSs runtime.

This module defines the static side of the programming model: a
:class:`TaskDefinition` is created for every function annotated with a
``#pragma css task`` construct (section II of the paper), and a
:class:`TaskInstance` is created for every *invocation* of such a
function while a runtime is active.

Terminology follows the paper:

* *directionality clauses* — ``input`` / ``output`` / ``inout`` declare
  whether each parameter is read, written, or both (section II);
* *dimension specifiers* — ``a[M][M]`` give the shape of an array
  parameter so the runtime knows its size;
* *array region specifiers* — ``data{i..j}`` restrict the access to a
  sub-region (section V.A, the language extension);
* *opaque parameters* — ``void *`` pointers in the paper; they "pass
  through the runtime unaltered and are not considered in the task
  dependency analysis".
"""

from __future__ import annotations

import enum
import inspect
import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable, NamedTuple, Optional, Sequence

__all__ = [
    "Direction",
    "TaskState",
    "ParamAccess",
    "TaskDefinition",
    "TaskInstance",
    "InvocationError",
]


class Direction(enum.Enum):
    """Directionality of a task parameter (section II)."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"
    #: ``void *`` analogue: skipped by the dependency analysis.
    OPAQUE = "opaque"

    @property
    def reads(self) -> bool:
        return self in (Direction.INPUT, Direction.INOUT)

    @property
    def writes(self) -> bool:
        return self in (Direction.OUTPUT, Direction.INOUT)


class TaskState(enum.Enum):
    """Lifecycle of a task instance inside the runtime."""

    #: Created, dependency analysis done, still has unsatisfied inputs.
    BLOCKED = "blocked"
    #: All input dependencies satisfied; sitting in some ready list.
    READY = "ready"
    #: Currently executing on a worker (or the main thread).
    RUNNING = "running"
    #: Finished; its successors may have become ready.
    FINISHED = "finished"


class ParamAccess(NamedTuple):
    """One concrete (datum, region, direction) access of a task instance.

    The dependency engine consumes a flat list of these.  A parameter
    that appears in several directionality clauses with different
    regions (allowed by section V.A: "a single parameter may appear
    several times in the directionality clauses") contributes one
    :class:`ParamAccess` per appearance.

    A ``NamedTuple`` rather than a (frozen) dataclass: construction is a
    single C-level tuple build, and one to two of these are created per
    task submission — the paper's per-``task_add`` overhead.
    """

    name: str
    direction: Direction
    #: The user-visible object passed at the call site.
    value: Any
    #: Resolved region (a ``Region``; ``None`` means the whole object).
    region: Any = None
    #: Index of the parameter in the function signature.
    position: int = -1


class InvocationError(TypeError):
    """Raised when a call site does not match the task declaration."""


_task_counter = itertools.count(1)
_counter_lock = threading.Lock()


def _next_task_id() -> int:
    # itertools.count.__next__ is atomic at the C level, so the id
    # allocation itself needs no lock — this is on the per-submission
    # hot path.  (Submission is main-thread-only anyway; the atomicity
    # covers stray instantiations from tests/benchmarks.)
    return next(_task_counter)


def reset_task_ids() -> None:
    """Restart instance numbering (used by tests and the recorder).

    Figure 5 of the paper numbers tasks by invocation order starting at
    1; runtimes call this so that freshly built graphs match.
    """

    global _task_counter
    with _counter_lock:
        _task_counter = itertools.count(1)


@dataclass
class TaskDefinition:
    """Static description of a task: the parsed pragma + the function.

    One per annotated function, shared by all its invocations.
    """

    func: Callable[..., Any]
    #: ``pragma.ParamSpec`` objects in declaration order.
    params: Sequence[Any]
    high_priority: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = getattr(self.func, "__name__", "<task>")
        self._signature = inspect.signature(self.func)
        self._declared = {p.name for p in self.params}
        #: ordered parameter names, for the zero-overhead bind fast path
        self.param_names: tuple[str, ...] = tuple(self._signature.parameters)
        #: parameter name -> position, cached for access building
        self.positions: dict[str, int] = {
            name: idx for idx, name in enumerate(self.param_names)
        }
        #: True when any declared parameter carries dimension or region
        #: specifiers (expression evaluation needed at invocation).
        self.needs_expressions: bool = any(
            getattr(p, "dims", ()) or getattr(p, "regions", ()) for p in self.params
        )
        #: parameter name -> set of declared directions.  A parameter
        #: may appear in several clauses with different regions, so this
        #: is a set union (used by the repro.check sanitizer).
        self.directions_by_name: dict[str, set[Direction]] = {}
        for p in self.params:
            self.directions_by_name.setdefault(p.name, set()).add(p.direction)
        #: Precompiled invocation plan, attached lazily by
        #: :func:`repro.core.invocation.plan_for` (kept off this module
        #: to avoid a task -> invocation import cycle).
        self._invocation_plan = None

    @property
    def signature(self) -> inspect.Signature:
        return self._signature

    def bind_dict(self, args: tuple, kwargs: dict) -> dict:
        """Bind a call site to parameter names, applying defaults.

        Fast path: plain positional calls with one value per parameter
        skip :mod:`inspect` entirely (this is on the per-task-submission
        critical path of the runtime, the paper's task_add overhead).
        """

        if not kwargs and len(args) == len(self.param_names):
            return dict(zip(self.param_names, args))
        try:
            bound = self._signature.bind(*args, **kwargs)
        except TypeError as exc:  # surface the task name in the error
            raise InvocationError(f"task {self.name!r}: {exc}") from exc
        bound.apply_defaults()
        return dict(bound.arguments)

    def declared_direction(self, param_name: str) -> Optional[Direction]:
        """Direction of *param_name*, or ``None`` if undeclared.

        Undeclared parameters are treated as by-value scalars: captured
        at invocation time and ignored by the dependency analysis, like
        the paper's scalar arguments.
        """

        for spec in self.params:
            if spec.name == param_name:
                return spec.direction
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        clauses = ", ".join(f"{p.direction.value}({p.name})" for p in self.params)
        return f"TaskDefinition({self.name}: {clauses})"


class TaskInstance:
    """One dynamic invocation of a task (a node of the task graph).

    A plain ``__slots__`` class with a hand-written ``__init__``: one of
    these is allocated per submission, so the generated-dataclass
    machinery (per-field defaults resolution, ``__set_name__`` walks)
    is measurable overhead on the fast path.
    """

    __slots__ = (
        "definition",
        "_accesses",
        "_arguments",
        "call_values",
        "task_id",
        "high_priority",
        "state",
        "num_pending_deps",
        "predecessors",
        "successors",
        "executed_by",
        "reads",
        "writes",
        "sanitizer_state",
    )

    def __init__(
        self,
        definition: TaskDefinition,
        accesses: Optional[list],
        arguments: Optional[dict],
        task_id: Optional[int] = None,
        high_priority: bool = False,
        call_values: Optional[tuple] = None,
    ) -> None:
        self.definition = definition
        self._accesses = accesses
        self._arguments = arguments
        #: Bound argument values in positional (signature) order, set by
        #: the plan's simple fast path.  When present, ``accesses`` and
        #: ``arguments`` are derived lazily from it — the dependency
        #: engine reads the plan's access specs + this tuple directly,
        #: so the common submission allocates neither.
        self.call_values = call_values
        self.task_id = next(_task_counter) if task_id is None else task_id
        self.high_priority = high_priority
        self.state = TaskState.BLOCKED
        # --- graph bookkeeping (maintained by core.graph.TaskGraph) ---
        #: number of incomplete true-dependency predecessors
        self.num_pending_deps = 0
        self.predecessors: set = set()
        self.successors: set = set()
        # --- runtime bookkeeping --------------------------------------
        #: worker index that executed the task (-1: not yet / main 0)
        self.executed_by = -1
        #: versions this instance reads / writes (dependency engine)
        self.reads: list = []
        self.writes: list = []
        #: snapshots taken by the access sanitizer (None: sanitize off)
        self.sanitizer_state: Any = None

    @property
    def accesses(self) -> list:
        """One :class:`ParamAccess` per clause appearance (lazy)."""

        acc = self._accesses
        if acc is None:
            values = self.call_values
            acc = self._accesses = [
                ParamAccess(name, direction, values[pos], None, pos)
                for name, direction, pos
                in self.definition._invocation_plan.access_specs
            ]
        return acc

    @property
    def arguments(self) -> dict:
        """Values for every parameter as bound at the call site (lazy)."""

        args = self._arguments
        if args is None:
            args = self._arguments = dict(
                zip(self.definition.param_names, self.call_values)
            )
        return args

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def is_ready(self) -> bool:
        return self.num_pending_deps == 0 and self.state is TaskState.BLOCKED

    def __hash__(self) -> int:
        return self.task_id

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Task #{self.task_id} {self.name} {self.state.value}>"
