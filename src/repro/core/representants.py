"""Representants (section V.B).

"A representant is a memory address that represents a possibly
non-contiguous collection of memory addresses.  Each representant is
normally associated to an opaque pointer that is used by the tasks to
access the actual data."

In this binding a :class:`Representant` is a small token object.  It is
trackable by identity (so passing it through ``input``/``output``/
``inout`` clauses introduces exactly the dependency the projected region
access would have) but never renamable — the paper notes that
"representants cannot be reliably used if there are false dependencies
between the represented data", and renaming one would silently detach
it from the data it stands for.  The dependency engine therefore falls
back to explicit WAR/WAW edges for representants.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["Representant", "RepresentantTable"]


class Representant:
    """A proxy address standing in for a collection of real addresses."""

    __slots__ = ("label", "payload")

    def __init__(self, label: str = "", payload: Any = None) -> None:
        self.label = label
        #: Optional reference to the represented data (for debugging /
        #: examples only; the runtime never touches it).
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Representant {self.label or hex(id(self))}>"


class RepresentantTable:
    """Convenience container: one representant per (non-overlapping) key.

    Mirrors the paper's usage: "if the array regions are non-overlapping,
    it is sufficient to have one representant per array region and an
    opaque pointer to the array".  Keys are typically region tuples or
    block coordinates.
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._table: dict = {}

    def for_key(self, key) -> Representant:
        rep = self._table.get(key)
        if rep is None:
            rep = Representant(label=f"{self.label}[{key!r}]")
            self._table[key] = rep
        return rep

    def __len__(self) -> int:
        return len(self._table)

    def get(self, key) -> Optional[Representant]:
        return self._table.get(key)
