"""Matrix multiplication (Figures 1 and 3; evaluation section VI.B).

Three variants, matching the paper:

* :func:`matmul_dense` — Figure 1: dense hyper-matrices, ``N^3`` tasks
  arranged as ``N^2`` chains of ``N`` tasks.  "Note that any ordering of
  the three nested loops produces correct results" — the ``loop_order``
  argument exercises that claim.
* :func:`matmul_sparse` — Figure 3: block-sparse inputs; tasks and the
  output's block structure are created on demand.
* :func:`matmul_flat` — section VI.B: a flat input, copied into an
  on-demand hyper-matrix exactly like the Cholesky transformation of
  Figure 9, for a fair comparison against multithreaded BLAS.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..blas.hypermatrix import HyperMatrix
from ..core.api import barrier, current_runtime
from .tasks import get_block_t, put_block_t, sgemm_t

__all__ = [
    "matmul_dense",
    "matmul_sparse",
    "matmul_flat",
    "dense_task_count",
    "run_dense",
]


def matmul_dense(
    a: HyperMatrix, b: HyperMatrix, c: HyperMatrix, loop_order: str = "ijk"
) -> None:
    """Figure 1: ``C += A @ B`` on dense hyper-matrices.

    *loop_order* permutes the three nested loops ("the programmer does
    not have to take care of what is the best task order").
    """

    if sorted(loop_order) != ["i", "j", "k"]:
        raise ValueError(f"loop_order must be a permutation of 'ijk', got {loop_order!r}")
    n = a.n
    ranges = {name: range(n) for name in "ijk"}
    for first, second, third in itertools.product(
        ranges[loop_order[0]], ranges[loop_order[1]], ranges[loop_order[2]]
    ):
        idx = dict(zip(loop_order, (first, second, third)))
        i, j, k = idx["i"], idx["j"], idx["k"]
        sgemm_t(a[i][k], b[k][j], c[i][j])


def matmul_sparse(a: HyperMatrix, b: HyperMatrix, c: HyperMatrix) -> None:
    """Figure 3: sparse hyper-matrix multiplication.

    "This code dynamically allocates memory and executes tasks according
    to the data needs."
    """

    n = a.n
    for i in range(n):
        for j in range(n):
            for k in range(n):
                if a[i][k] is not None and b[k][j] is not None:
                    c.alloc_block(i, j)
                    sgemm_t(a[i][k], b[k][j], c[i][j])


def matmul_flat(
    a_flat: np.ndarray,
    b_flat: np.ndarray,
    c_flat: np.ndarray,
    block_size: int,
) -> None:
    """Section VI.B: multiplication "with on-demand block copies".

    The flat matrices are opaque to the runtime; ``get_block_t`` tasks
    populate hyper-matrices lazily, ``put_block_t`` tasks write the
    result back, and only the block tiles carry dependencies.
    """

    size = a_flat.shape[0]
    if size % block_size:
        raise ValueError(f"size {size} not divisible by block size {block_size}")
    n = size // block_size

    a = HyperMatrix(n, block_size, a_flat.dtype)
    b = HyperMatrix(n, block_size, b_flat.dtype)
    c = HyperMatrix(n, block_size, c_flat.dtype)

    def get_once(hyper: HyperMatrix, flat: np.ndarray, i: int, j: int):
        if hyper[i][j] is None:
            block = np.empty((block_size, block_size), flat.dtype)
            hyper[i, j] = block
            get_block_t(i, j, flat, block)
        return hyper[i][j]

    for i in range(n):
        for j in range(n):
            for k in range(n):
                get_once(a, a_flat, i, k)
                get_once(b, b_flat, k, j)
                get_once(c, c_flat, i, j)
                sgemm_t(a[i][k], b[k][j], c[i][j])
    for i in range(n):
        for j in range(n):
            if c[i][j] is not None:
                put_block_t(i, j, c[i][j], c_flat)


def dense_task_count(n_blocks: int) -> int:
    """``N^3`` tasks, as the paper states below Figure 1."""

    return n_blocks ** 3


def run_dense(
    a: HyperMatrix, b: HyperMatrix, c: HyperMatrix, loop_order: str = "ijk"
) -> HyperMatrix:
    """Run dense matmul to completion under whatever runtime is active."""

    matmul_dense(a, b, c, loop_order)
    if current_runtime() is not None:
        barrier()
    return c
