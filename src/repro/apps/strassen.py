"""Strassen's algorithm (evaluation section VI.C).

"Strassen's algorithm makes heavy usage of temporary matrices, which
combined with a recursive implementation, results in an intensive
renaming test case."

The recursion reuses two scratch operand grids for all seven products
at every node — the natural way C code reuses work arrays — so each
product's writes are WAR hazards against the previous product's pending
reads.  With renaming on, the runtime silently gives every product its
own buffers; with renaming off, the seven products serialise (the
ablation benchmark measures exactly this).

Tasks: block multiplications (``smul_t``), additions and subtractions,
as the paper states.
"""

from __future__ import annotations

import numpy as np

from ..blas.hypermatrix import HyperMatrix
from ..core.api import css_task

__all__ = [
    "smul_t",
    "sacc_t",
    "ssubacc_t",
    "strassen_multiply",
    "strassen_flops",
    "strassen_task_count",
]


@css_task("input(a, b) output(c)")
def smul_t(a, b, c):
    """Leaf product ``c = a @ b`` (fresh output: renameable)."""

    np.matmul(a, b, out=c)


@css_task("input(a) inout(c)")
def sacc_t(a, c):
    """Accumulate ``c += a`` (the M-combination step)."""

    c += a


@css_task("input(a) inout(c)")
def ssubacc_t(a, c):
    """Accumulate ``c -= a``."""

    c -= a


@css_task("input(a, b) output(c)")
def _sadd_t(a, b, c):
    np.add(a, b, out=c)


@css_task("input(a, b) output(c)")
def _ssub_t(a, b, c):
    np.subtract(a, b, out=c)


class _View:
    """A square sub-grid of a block grid (no copies)."""

    __slots__ = ("grid", "r0", "c0", "n")

    def __init__(self, grid, r0: int, c0: int, n: int):
        self.grid = grid
        self.r0 = r0
        self.c0 = c0
        self.n = n

    def block(self, i: int, j: int):
        return self.grid[self.r0 + i][self.c0 + j]

    def quadrant(self, qi: int, qj: int) -> "_View":
        half = self.n // 2
        return _View(self.grid, self.r0 + qi * half, self.c0 + qj * half, half)


def _alloc_grid(n: int, m: int, dtype) -> list[list[np.ndarray]]:
    return [[np.empty((m, m), dtype) for _ in range(n)] for _ in range(n)]


def _view_of(hm) -> _View:
    if isinstance(hm, HyperMatrix):
        return _View(hm, 0, 0, hm.n)
    return _View(hm, 0, 0, len(hm))


def _add(x: _View, y: _View, out: _View) -> None:
    for i in range(x.n):
        for j in range(x.n):
            _sadd_t(x.block(i, j), y.block(i, j), out.block(i, j))


def _sub(x: _View, y: _View, out: _View) -> None:
    for i in range(x.n):
        for j in range(x.n):
            _ssub_t(x.block(i, j), y.block(i, j), out.block(i, j))


def _acc(src: _View, dst: _View, sign: int) -> None:
    task = sacc_t if sign > 0 else ssubacc_t
    for i in range(src.n):
        for j in range(src.n):
            task(src.block(i, j), dst.block(i, j))


_ZERO_CACHE: dict[int, np.ndarray] = {}


def _zero(m: int, dtype) -> np.ndarray:
    key = m
    block = _ZERO_CACHE.get(key)
    if block is None or block.dtype != dtype:
        block = np.zeros((m, m), dtype)
        _ZERO_CACHE[key] = block
    return block


def strassen_multiply(a, b, c) -> None:
    """Compute ``C = A @ B`` with Strassen's recursion.

    *a*, *b*, *c* are :class:`HyperMatrix` (or nested block lists) with
    a power-of-two number of blocks per side.  ``c``'s blocks are
    overwritten.
    """

    va, vb, vc = _view_of(a), _view_of(b), _view_of(c)
    if va.n & (va.n - 1):
        raise ValueError(f"Strassen needs a power-of-two block count, got {va.n}")
    sample = va.block(0, 0)
    _zero(sample.shape[0], sample.dtype)  # warm the shared zero tile
    _strassen(va, vb, vc, sample.shape[0], sample.dtype)


def _strassen(a: _View, b: _View, c: _View, m: int, dtype) -> None:
    if a.n == 1:
        smul_t(a.block(0, 0), b.block(0, 0), c.block(0, 0))
        return
    half = a.n // 2
    a11, a12, a21, a22 = (a.quadrant(i, j) for i in (0, 1) for j in (0, 1))
    b11, b12, b21, b22 = (b.quadrant(i, j) for i in (0, 1) for j in (0, 1))
    c11, c12, c21, c22 = (c.quadrant(i, j) for i in (0, 1) for j in (0, 1))

    # Scratch operands, deliberately REUSED across the seven products:
    # the renaming stress case described in section VI.C.
    ta = _View(_alloc_grid(half, m, dtype), 0, 0, half)
    tb = _View(_alloc_grid(half, m, dtype), 0, 0, half)
    products = [
        _View(_alloc_grid(half, m, dtype), 0, 0, half) for _ in range(7)
    ]
    m1, m2, m3, m4, m5, m6, m7 = products

    _add(a11, a22, ta)
    _add(b11, b22, tb)
    _strassen(ta, tb, m1, m, dtype)  # M1 = (A11+A22)(B11+B22)

    _add(a21, a22, ta)  # reuse of ta: WAR vs pending M1 reads -> rename
    _strassen(ta, b11, m2, m, dtype)  # M2 = (A21+A22) B11

    _sub(b12, b22, tb)
    _strassen(a11, tb, m3, m, dtype)  # M3 = A11 (B12-B22)

    _sub(b21, b11, tb)
    _strassen(a22, tb, m4, m, dtype)  # M4 = A22 (B21-B11)

    _add(a11, a12, ta)
    _strassen(ta, b22, m5, m, dtype)  # M5 = (A11+A12) B22

    _sub(a21, a11, ta)
    _add(b11, b12, tb)
    _strassen(ta, tb, m6, m, dtype)  # M6 = (A21-A11)(B11+B12)

    _sub(a12, a22, ta)
    _add(b21, b22, tb)
    _strassen(ta, tb, m7, m, dtype)  # M7 = (A12-A22)(B21+B22)

    # C11 = M1 + M4 - M5 + M7
    _add(m1, m4, c11)
    _acc(m5, c11, -1)
    _acc(m7, c11, +1)
    # C12 = M3 + M5
    _add(m3, m5, c12)
    # C21 = M2 + M4
    _add(m2, m4, c21)
    # C22 = M1 - M2 + M3 + M6
    _sub(m1, m2, c22)
    _acc(m3, c22, +1)
    _acc(m6, c22, +1)


# ---------------------------------------------------------------------------
# Operation accounting ("Gflops figures have been calculated using
# Strassen's formula", section VI.C)
# ---------------------------------------------------------------------------

def strassen_task_count(n_blocks: int) -> dict[str, int]:
    """Task counts of one ``strassen_multiply`` on N-block matrices."""

    if n_blocks & (n_blocks - 1):
        raise ValueError("power-of-two block count required")
    muls = 0
    adds = 0
    n = n_blocks
    nodes = 1
    while n > 1:
        half = n // 2
        per_node_adds = (10 + 8) * half * half  # 10 operand prep + 8 combine
        adds += nodes * per_node_adds
        nodes *= 7
        n = half
    muls = nodes
    return {"smul_t": muls, "add_like": adds, "total": muls + adds}


def strassen_flops(n_blocks: int, block_size: int) -> int:
    """Floating-point operations of the Strassen execution itself."""

    counts = strassen_task_count(n_blocks)
    m = block_size
    return counts["smul_t"] * (2 * m ** 3 - m * m) + counts["add_like"] * m * m
