"""N Queens (evaluation section VI.E).

Three versions, matching the paper's comparison:

* :func:`nqueens_sequential` — one solution array, no copies: "a
  sequential version should not contain artifacts necessary for a
  parallel paradigm".
* :func:`nqueens_smpss` — the SMPSs version: the first levels of the
  recursion run in the main program, placing queens through a tiny
  ``inout`` task; the last *task_levels* levels are solved by
  ``nqueens_task`` leaf tasks.  Sibling placements are WAR hazards
  against pending leaf tasks, and "the runtime takes care of it by
  renaming the array as needed" — no hand duplication.
* :func:`nqueens_duplicating` — the OpenMP 3.0 / Cilk structure, which
  "requires allocating a copy of the partial solution array" at every
  nested task entrance; used as the baseline topology and to reproduce
  the Figure 15/16 normalisation discussion.
"""

from __future__ import annotations

import numpy as np

from ..core.api import barrier, current_runtime
from .tasks import _count_completions, _legal, nqueens_task, place_t

__all__ = [
    "nqueens_sequential",
    "nqueens_smpss",
    "nqueens_duplicating",
    "KNOWN_SOLUTIONS",
    "DEFAULT_TASK_LEVELS",
]

#: Known solution counts for validation.
KNOWN_SOLUTIONS = {
    1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92,
    9: 352, 10: 724, 11: 2680, 12: 14200, 13: 73712,
}

#: Depth of the main-program decomposition: the first 4 recursion
#: levels spawn, and each leaf task sequentially computes the remaining
#: levels without further decomposition ("a sequential task that does
#: not get decomposed", section VI.E) — this is what gives leaf tasks
#: the granularity the runtime needs.
DEFAULT_TASK_LEVELS = 4


def nqueens_sequential(n: int) -> tuple[int, int]:
    """Count all solutions; returns (solutions, nodes visited)."""

    return _count_completions(n, 0, [])


def nqueens_smpss(n: int, task_levels: int = DEFAULT_TASK_LEVELS):
    """The SMPSs decomposition.

    Returns the list of per-task result cells; after a barrier,
    ``sum(cell[0]...)`` is the solution count.  Under no runtime it runs
    sequentially and the cells are already final.
    """

    task_depth = min(task_levels, n)
    a = np.zeros(n, dtype=np.int32)
    cells: list[np.ndarray] = []

    def explore(j: int, placed: tuple[int, ...]) -> None:
        if j == task_depth:
            cell = np.zeros(2, dtype=np.int64)
            cells.append(cell)
            nqueens_task(n, j, a, cell)
            return
        for col in range(n):
            # Legality is checked against the main program's own
            # record of what it placed (its loop state), not by reading
            # the tracked array — tasks may still be consuming older
            # versions of it.
            if _legal(list(placed), col):
                # The renaming pressure on ``a`` is the entire point of
                # this benchmark (section VI.E): every rename is an
                # array copy OpenMP/Cilk programmers write by hand.
                place_t(a, j, col)  # css: ignore[flow-renaming-pressure]
                explore(j + 1, placed + (col,))

    explore(0, ())
    return cells


def nqueens_smpss_count(n: int, task_levels: int = DEFAULT_TASK_LEVELS) -> int:
    """Run :func:`nqueens_smpss` to completion and return the count."""

    cells = nqueens_smpss(n, task_levels)
    if current_runtime() is not None:
        barrier()
    return int(sum(int(cell[0]) for cell in cells))


def nqueens_duplicating(n: int, task_levels: int = DEFAULT_TASK_LEVELS):
    """The OpenMP-3.0/Cilk structure: copy the array at every spawn.

    "At each nested task entrance the OpenMP tasking version requires
    allocating a copy of the partial solution array so that tasks at the
    same recursion level do not overwrite each other's partial
    solutions."  Each leaf receives its own private copy; the extra
    allocation+copy is the measured artifact of Figures 15/16.
    """

    task_depth = min(task_levels, n)
    cells: list[np.ndarray] = []

    def explore(j: int, a: np.ndarray) -> None:
        if j == task_depth:
            cell = np.zeros(2, dtype=np.int64)
            cells.append(cell)
            nqueens_task(n, j, a, cell)
            return
        for col in range(n):
            if _legal([int(x) for x in a[:j]], col):
                dup = np.array(a, copy=True)  # the hand-duplication artifact
                dup[j] = col
                explore(j + 1, dup)

    explore(0, np.zeros(n, dtype=np.int32))
    return cells


def nqueens_duplicating_count(n: int, task_levels: int = DEFAULT_TASK_LEVELS) -> int:
    cells = nqueens_duplicating(n, task_levels)
    if current_runtime() is not None:
        barrier()
    return int(sum(int(cell[0]) for cell in cells))
