"""Multisort (Figure 7; evaluation section VI.D).

* :func:`multisort` — the Figure 7 program verbatim: split into four
  quarters per recursion step, sort each (``seqquick_t`` at the base),
  then three ``seqmerge_t`` tasks through a temporary array.  All
  inter-task ordering comes from the array-region dependency analysis
  of section V.A — there are no explicit barriers.
* :func:`multisort_recursive_merge_topology` — the section VI.D variant
  where "the seqmerge task invocations have been replaced by calls to a
  recursive merge function".  Real divide-and-conquer merging picks
  split points by binary search on *values*, which is inherently
  data-dependent; this generator reproduces the task *topology and
  sizes* with balanced positional splits and is used (in skip-mode
  recording) by the Figure 14 simulator only — executing its merge
  leaves would not produce a sorted array.  The numerically correct
  program remains :func:`multisort`.
"""

from __future__ import annotations

import numpy as np

from ..core.api import barrier, css_task, current_runtime
from .tasks import seqmerge_t, seqquick_t


@css_task(
    "input(src{l1..h1}, src{l2..h2}, l1, h1, l2, h2, d0, d1) output(dest{d0..d1})"
)
def seqmerge_piece_t(src, l1, h1, l2, h2, dest, d0, d1):
    """One piece of a divide-and-conquer merge, with explicit dest bounds.

    Unlike Figure 7's ``seqmerge_t`` (whose two source ranges are
    adjacent, so the output region is simply ``{i1..j2}``), a recursive
    merge piece reads two *non-adjacent* source windows; its write
    region must therefore be declared separately (``dest{d0..d1}``).
    """

    left = src[l1 : h1 + 1]
    right = src[l2 : h2 + 1]
    import numpy as _np

    merged = _np.sort(_np.concatenate([left, right]), kind="mergesort")
    dest[d0 : d1 + 1] = merged

__all__ = [
    "multisort",
    "multisort_recursive_merge_topology",
    "sequential_sort",
    "DEFAULT_QUICKSIZE",
]

DEFAULT_QUICKSIZE = 1024


def sequential_sort(data: np.ndarray) -> np.ndarray:
    """The sequential oracle (in place; returns *data*)."""

    data.sort(kind="quicksort")
    return data


def multisort(
    data: np.ndarray, tmp: np.ndarray | None = None, quicksize: int = DEFAULT_QUICKSIZE
) -> np.ndarray:
    """Figure 7: sort *data* in place with 4-way recursive splitting."""

    if data.ndim != 1:
        raise ValueError("multisort sorts 1-D arrays")
    if quicksize < 4:
        raise ValueError("quicksize must be at least 4")
    if tmp is None:
        tmp = np.empty_like(data)
    if tmp.shape != data.shape:
        raise ValueError("tmp must have the same shape as data")
    if len(data):
        _sort(data, 0, len(data) - 1, tmp, quicksize)
        if current_runtime() is not None:
            barrier()
    return data


def _sort(data: np.ndarray, i: int, j: int, tmp: np.ndarray, quicksize: int) -> None:
    size = j - i + 1
    if size <= quicksize:
        seqquick_t(data, i, j)
        return
    quarter = size // 4
    i1, j1 = i, i + quarter - 1
    i2, j2 = i + quarter, i + 2 * quarter - 1
    i3, j3 = i + 2 * quarter, i + 3 * quarter - 1
    i4, j4 = i + 3 * quarter, j
    _sort(data, i1, j1, tmp, quicksize)
    _sort(data, i2, j2, tmp, quicksize)
    _sort(data, i3, j3, tmp, quicksize)
    _sort(data, i4, j4, tmp, quicksize)
    seqmerge_t(data, i1, j1, i2, j2, tmp)
    seqmerge_t(data, i3, j3, i4, j4, tmp)
    seqmerge_t(tmp, i1, j2, i3, j4, data)


def multisort_recursive_merge_topology(
    data: np.ndarray,
    tmp: np.ndarray,
    quicksize: int = DEFAULT_QUICKSIZE,
    merge_leaf: int | None = None,
) -> None:
    """Section VI.D task topology with divide-and-conquer merges.

    Only meaningful under a skip-mode recording runtime (see module
    docstring).  *merge_leaf* is the range size below which a merge is
    one ``seqmerge_t`` task; it defaults to *quicksize*.
    """

    if merge_leaf is None:
        merge_leaf = quicksize
    _sort_rm(data, 0, len(data) - 1, tmp, quicksize, merge_leaf)


def _sort_rm(data, i, j, tmp, quicksize, merge_leaf) -> None:
    size = j - i + 1
    if size <= quicksize:
        seqquick_t(data, i, j)
        return
    quarter = size // 4
    i1, j1 = i, i + quarter - 1
    i2, j2 = i + quarter, i + 2 * quarter - 1
    i3, j3 = i + 2 * quarter, i + 3 * quarter - 1
    i4, j4 = i + 3 * quarter, j
    _sort_rm(data, i1, j1, tmp, quicksize, merge_leaf)
    _sort_rm(data, i2, j2, tmp, quicksize, merge_leaf)
    _sort_rm(data, i3, j3, tmp, quicksize, merge_leaf)
    _sort_rm(data, i4, j4, tmp, quicksize, merge_leaf)
    _merge_rm(data, i1, j1, i2, j2, tmp, i1, merge_leaf)
    _merge_rm(data, i3, j3, i4, j4, tmp, i3, merge_leaf)
    _merge_rm(tmp, i1, j2, i3, j4, data, i1, merge_leaf)


def _merge_rm(src, l1, h1, l2, h2, dest, dlo, merge_leaf) -> None:
    """Balanced-split divide-and-conquer merge (topology only)."""

    total = max(h1 - l1 + 1, 0) + max(h2 - l2 + 1, 0)
    if total <= 0:
        return
    if total <= merge_leaf or h1 < l1 or h2 < l2:
        if h1 < l1:
            l1 = h1 = l2  # degenerate: merge the remaining run with itself
        if h2 < l2:
            l2 = h2 = h1
        seqmerge_piece_t(src, l1, h1, l2, h2, dest, dlo, dlo + total - 1)
        return
    m1 = (l1 + h1) // 2
    # A real implementation binary-searches src[l2..h2] for src[m1];
    # we split positionally to keep the topology static.
    m2 = l2 + min(h2 - l2, (m1 - l1))
    left_size = (m1 - l1 + 1) + (m2 - l2 + 1)
    _merge_rm(src, l1, m1, l2, m2, dest, dlo, merge_leaf)
    _merge_rm(src, m1 + 1, h1, m2 + 1, h2, dest, dlo + left_size, merge_leaf)
