"""Task declarations shared by the paper's applications.

The Python counterparts of Figure 2 ("Declarations of some of the tasks
that will be used in this paper") and Figure 10 (the on-demand blocking
tasks).  Each ``@css_task`` string is the clause list of the paper's
``#pragma css task`` line.

Note the paper overloads the name ``sgemm_t``: in the multiplication
codes (Figures 1, 3) it accumulates ``c += a @ b``, while in Cholesky
(Figure 4) it is the rank-update ``c -= a @ b.T``.  We keep both under
distinct names and alias ``sgemm_t`` to the multiplication flavour.
"""

from __future__ import annotations

import numpy as np

from ..blas import kernels
from ..core.api import css_task

__all__ = [
    "sgemm_t",
    "sgemm_nt_t",
    "spotrf_t",
    "strsm_t",
    "ssyrk_t",
    "sadd_t",
    "ssub_t",
    "scopy_t",
    "get_block_t",
    "put_block_t",
    "seqquick_t",
    "seqmerge_t",
    "place_t",
    "nqueens_task",
]


# ---------------------------------------------------------------------------
# Linear-algebra tile tasks (Figure 2)
# ---------------------------------------------------------------------------

@css_task("input(a, b) inout(c)")
def sgemm_t(a, b, c):
    """Figure 1/3 multiplication task: ``c += a @ b``."""

    kernels.gemm(a, b, c)


@css_task("input(a, b) inout(c)")
def sgemm_nt_t(a, b, c):
    """Figure 4 Cholesky trailing update: ``c -= a @ b.T``."""

    kernels.gemm_nt(a, b, c)


@css_task("inout(a)")
def spotrf_t(a):
    """Figure 2: in-place lower Cholesky factorisation of a tile."""

    kernels.potrf(a)


@css_task("input(a) inout(b)")
def strsm_t(a, b):
    """Figure 2: triangular solve of a panel tile against the diagonal."""

    kernels.trsm(a, b)


@css_task("input(a) inout(b)")
def ssyrk_t(a, b):
    """Figure 2: symmetric rank-k update of the diagonal tile."""

    kernels.syrk(a, b)


# ---------------------------------------------------------------------------
# Strassen helper tasks (section VI.C: "block multiplications, additions
# and substractions")
# ---------------------------------------------------------------------------

@css_task("input(a, b) output(c)")
def sadd_t(a, b, c):
    """``c = a + b``; ``output`` directionality makes reuse renameable."""

    kernels.geadd(a, b, c)


@css_task("input(a, b) output(c)")
def ssub_t(a, b, c):
    """``c = a - b``."""

    kernels.gesub(a, b, c)


@css_task("input(a) output(b)")
def scopy_t(a, b):
    """``b = a`` (tile copy)."""

    kernels.gecopy(a, b)


# ---------------------------------------------------------------------------
# Flat-matrix blocking tasks (Figure 10)
# ---------------------------------------------------------------------------
# The flat matrix is passed as an *opaque* parameter — the paper passes
# it as ``void *`` so it "passes through the runtime unaltered" and only
# the hyper-matrix blocks carry dependencies.

@css_task("opaque(A) input(i, j) output(a)")
def get_block_t(i, j, A, a):
    """Copy block (i, j) of the opaque flat matrix into tile *a*."""

    m = a.shape[0]
    a[...] = A[i * m : (i + 1) * m, j * m : (j + 1) * m]


@css_task("opaque(A) input(a, i, j)")
def put_block_t(i, j, a, A):
    """Copy tile *a* back into block (i, j) of the opaque flat matrix."""

    m = a.shape[0]
    A[i * m : (i + 1) * m, j * m : (j + 1) * m] = a


# ---------------------------------------------------------------------------
# Multisort tasks (Figure 7)
# ---------------------------------------------------------------------------

@css_task("inout(data{i..j}) input(i, j)")
def seqquick_t(data, i, j):
    """Sort ``data[i..j]`` inclusively in place (the recursion base)."""

    data[i : j + 1] = np.sort(data[i : j + 1], kind="quicksort")


@css_task(
    "input(data{i1..j1}, data{i2..j2}, i1, j1, i2, j2) output(dest{i1..j2})"
)
def seqmerge_t(data, i1, j1, i2, j2, dest):
    """Merge sorted ``data[i1..j1]`` and ``data[i2..j2]`` into ``dest[i1..j2]``.

    Matches Figure 7's declaration: two *input* regions over the same
    parameter and one *output* region on the destination.
    """

    left = data[i1 : j1 + 1]
    right = data[i2 : j2 + 1]
    merged = np.empty(len(left) + len(right), dtype=data.dtype)
    li = ri = wi = 0
    # numpy-assisted merge: bulk-copy runs selected by searchsorted.
    positions = np.searchsorted(left, right, side="right")
    prev = 0
    for ri, pos in enumerate(positions):
        if pos > prev:
            merged[wi : wi + (pos - prev)] = left[prev:pos]
            wi += pos - prev
            prev = pos
        merged[wi] = right[ri]
        wi += 1
    if prev < len(left):
        merged[wi:] = left[prev:]
    dest[i1 : j2 + 1] = merged


# ---------------------------------------------------------------------------
# N Queens tasks (section VI.E)
# ---------------------------------------------------------------------------

@css_task("inout(a) input(j, col)")
def place_t(a, j, col):
    """Place a queen: write ``a[j] = col``.

    Successive sibling placements on the same array are WAR hazards
    against still-pending solver tasks; the runtime renames the array
    "as needed", which is exactly the hand-duplication OpenMP 3.0 and
    Cilk require (section VI.E).
    """

    a[j] = col


@css_task("input(n, j, a) inout(result)")
def nqueens_task(n, j, a, result):
    """Count completions of partial solution ``a[0..j-1]``.

    Explores the remaining ``n - j`` levels sequentially (the paper's
    "last 4 levels ... handled by tasks").  ``result[0]`` accumulates
    solutions, ``result[1]`` the number of nodes visited (used by the
    simulator's cost model).
    """

    solutions, nodes = count_completions_cached(
        int(n), int(j), tuple(int(x) for x in a[:j])
    )
    result[0] += solutions
    result[1] += nodes


#: Memo for sub-search results: repeated simulations of the same board
#: (benchmark thread sweeps) pay the search once.
_completions_cache: dict[tuple, tuple[int, int]] = {}


def count_completions_cached(n: int, j: int, placed: tuple[int, ...]) -> tuple[int, int]:
    key = (n, j, placed)
    hit = _completions_cache.get(key)
    if hit is None:
        hit = _count_completions(n, j, list(placed))
        _completions_cache[key] = hit
    return hit


def _legal(placed: list[int], col: int) -> bool:
    row = len(placed)
    for r, c in enumerate(placed):
        if c == col or abs(col - c) == row - r:
            return False
    return True


def _count_completions(n: int, j: int, placed: list[int]) -> tuple[int, int]:
    if j == n:
        return 1, 1
    solutions = 0
    nodes = 1
    for col in range(n):
        if _legal(placed, col):
            placed.append(col)
            sub_solutions, sub_nodes = _count_completions(n, j + 1, placed)
            solutions += sub_solutions
            nodes += sub_nodes
            placed.pop()
    return solutions, nodes
