"""Blocked LU decomposition with partial pivoting (section V).

The paper motivates the array-region language extension with LU: "the
algorithm includes pivoting operations that consist in swapping columns
and swapping rows.  Those two operations make it hard to block."  The
paper proposes the region syntax but its runtime "does not yet include
support"; ours does (:mod:`repro.core.regions`), so this module is the
worked example the paper could not run: a right-looking blocked LU with
partial pivoting expressed entirely through region-annotated tasks on a
single flat matrix.

Every task receives the flat matrix plus explicit bounds; the pragma's
region specifiers reference those bound parameters, exactly the
``data{i1..j1}``-style usage of Figure 7.  Regions that do not overlap
(trailing tiles of different block columns) proceed in parallel;
overlapping ones (row swaps across a whole block row) serialise through
true/anti/output edges.
"""

from __future__ import annotations

import numpy as np

from ..core.api import barrier, css_task, current_runtime

__all__ = ["lu_blocked", "lu_reconstruct", "lu_task_count"]


@css_task(
    "inout(A{r0..r1}{c0..c1}) output(ipiv{c0..c1}) input(r0, r1, c0, c1)"
)
def lu_panel_t(A, ipiv, r0, r1, c0, c1):
    """Factorise the panel ``A[r0..r1, c0..c1]`` with partial pivoting.

    Pivot rows are chosen inside ``r0..r1``; ``ipiv[c0 + t]`` records
    the *global* row swapped with row ``c0 + t`` (LAPACK ``getf2``
    convention restricted to the panel).
    """

    for t in range(c1 - c0 + 1):
        col = c0 + t
        row = c0 + t
        window = A[row : r1 + 1, col]
        pivot = row + int(np.argmax(np.abs(window)))
        ipiv[col] = pivot
        if abs(A[pivot, col]) == 0.0:
            raise ZeroDivisionError(f"singular panel at column {col}")
        if pivot != row:
            A[[row, pivot], c0 : c1 + 1] = A[[pivot, row], c0 : c1 + 1]
        if row < r1:
            A[row + 1 : r1 + 1, col] /= A[row, col]
            if col < c1:
                A[row + 1 : r1 + 1, col + 1 : c1 + 1] -= np.outer(
                    A[row + 1 : r1 + 1, col], A[row, col + 1 : c1 + 1]
                )


@css_task(
    "inout(A{r0..r1}{c0..c1}) input(ipiv{p0..p1}) input(r0, r1, c0, c1, p0, p1)"
)
def lu_laswp_t(A, ipiv, r0, r1, c0, c1, p0, p1):
    """Apply recorded row swaps ``p0..p1`` to columns ``c0..c1``."""

    for row in range(p0, p1 + 1):
        pivot = int(ipiv[row])
        if pivot != row:
            A[[row, pivot], c0 : c1 + 1] = A[[pivot, row], c0 : c1 + 1]


@css_task(
    "input(A{d0..d1}{d0..d1}) inout(A{d0..d1}{c0..c1}) input(d0, d1, c0, c1)"
)
def lu_trsm_t(A, d0, d1, c0, c1):
    """``U12`` block solve: ``A[d0..d1, c0..c1] <- L11^-1 @ (...)``.

    ``L11`` is the unit-lower triangle stored in the diagonal block.
    """

    import scipy.linalg as sla

    block = A[d0 : d1 + 1, c0 : c1 + 1]
    l11 = A[d0 : d1 + 1, d0 : d1 + 1]
    A[d0 : d1 + 1, c0 : c1 + 1] = sla.solve_triangular(
        l11, block, lower=True, unit_diagonal=True, check_finite=False
    )


@css_task(
    "input(A{i0..i1}{k0..k1}, A{k0..k1}{j0..j1}) inout(A{i0..i1}{j0..j1}) "
    "input(i0, i1, k0, k1, j0, j1)"
)
def lu_gemm_t(A, i0, i1, k0, k1, j0, j1):
    """Trailing update: ``A[i,j] -= A[i,k] @ A[k,j]`` on flat regions."""

    A[i0 : i1 + 1, j0 : j1 + 1] -= (
        A[i0 : i1 + 1, k0 : k1 + 1] @ A[k0 : k1 + 1, j0 : j1 + 1]
    )


def lu_blocked(a: np.ndarray, block_size: int) -> np.ndarray:
    """Right-looking blocked LU with partial pivoting, in place.

    Returns the pivot vector ``ipiv`` (LAPACK convention).  ``L`` (unit
    lower) and ``U`` overwrite *a*.
    """

    n = a.shape[0]
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"need a square matrix, got {a.shape}")
    if n % block_size:
        raise ValueError(f"size {n} not divisible by block size {block_size}")
    nb = n // block_size
    m = block_size
    ipiv = np.arange(n, dtype=np.int64)

    for k in range(nb):
        r0, r1 = k * m, n - 1  # panel rows
        c0, c1 = k * m, (k + 1) * m - 1  # panel columns
        lu_panel_t(a, ipiv, r0, r1, c0, c1)
        if k > 0:
            # Apply this panel's swaps to the L columns on the left.
            # Pivoted row swaps intrinsically write regions that
            # partially overlap earlier panel/swap writes; the runtime
            # serializes them through region chains, so the
            # whole-program checker's partial-overlap error is
            # intentional here.
            lu_laswp_t(a, ipiv, r0, r1, 0, c0 - 1, c0, c1)  # css: ignore[flow-overlapping-writes]
        for j in range(k + 1, nb):
            jc0, jc1 = j * m, (j + 1) * m - 1
            lu_laswp_t(a, ipiv, r0, r1, jc0, jc1, c0, c1)
            lu_trsm_t(a, c0, c1, jc0, jc1)
            for i in range(k + 1, nb):
                ir0, ir1 = i * m, (i + 1) * m - 1
                lu_gemm_t(a, ir0, ir1, c0, c1, jc0, jc1)

    if current_runtime() is not None:
        barrier()
    return ipiv


def lu_reconstruct(a_factored: np.ndarray, ipiv: np.ndarray) -> np.ndarray:
    """Rebuild ``P^T @ L @ U`` — equals the original matrix."""

    n = a_factored.shape[0]
    l = np.tril(a_factored, -1) + np.eye(n)
    u = np.triu(a_factored)
    pa = l @ u
    # Undo the swaps in reverse application order.
    for row in range(n - 1, -1, -1):
        pivot = int(ipiv[row])
        if pivot != row:
            pa[[row, pivot], :] = pa[[pivot, row], :]
    return pa


def lu_task_count(n_blocks: int) -> dict[str, int]:
    """Closed-form task counts of :func:`lu_blocked`."""

    nb = n_blocks
    counts = {
        "lu_panel_t": nb,
        "lu_laswp_t": (nb - 1) + nb * (nb - 1) // 2,
        "lu_trsm_t": nb * (nb - 1) // 2,
        "lu_gemm_t": sum((nb - 1 - k) ** 2 for k in range(nb)),
    }
    counts["total"] = sum(counts.values())
    return counts
