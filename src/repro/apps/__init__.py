"""Applications from the paper's evaluation (sections IV-VI).

One module per algorithm: matrix multiplication (dense, sparse, flat
with on-demand copies), Cholesky (hyper-matrix and flat), Strassen,
Multisort, N Queens, and the blocked LU with partial pivoting that
section V motivates.  Every module exposes an annotated ``*_main``
program that runs sequentially, under the threaded runtime, or under a
recording runtime unchanged — the paper's dual-compilation property.
"""

from . import cholesky, lu, matmul, multisort, nqueens, strassen, tasks

__all__ = ["cholesky", "lu", "matmul", "multisort", "nqueens", "strassen", "tasks"]
