#!/usr/bin/env python3
"""Quickstart: the SMPSs programming model in five minutes.

The paper's core idea (section II): write a *sequential* program, mark
functions as tasks with directionality clauses, and let the runtime
discover the parallelism by analysing data dependencies at run time.

This script shows:
 1. the dual-compilation property — the same code runs sequentially
    with no runtime, and in parallel inside one;
 2. automatic renaming removing WAR hazards (no hand copies);
 3. the task graph you can inspect (Figure 5 style).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SmpssRuntime, css_task, record_program


# --- declare tasks: the Python form of `#pragma css task` ----------------

@css_task("input(a, b) inout(c)")
def sgemm_t(a, b, c):
    """Figure 1's multiplication task: c += a @ b."""

    c += a @ b


@css_task("inout(a)")
def scale_t(a):
    a *= 0.5


def main() -> None:
    rng = np.random.default_rng(0)
    a = rng.standard_normal((64, 64))
    b = rng.standard_normal((64, 64))
    c = np.zeros((64, 64))

    # 1. Sequential execution: no runtime active, plain function calls.
    sgemm_t(a, b, c)
    scale_t(c)
    sequential_result = np.array(c)
    c[...] = 0.0
    print("sequential run done:", sequential_result.sum())

    # 2. Parallel execution: same call sites, now asynchronous tasks.
    with SmpssRuntime(num_workers=3) as rt:
        sgemm_t(a, b, c)
        scale_t(c)
        rt.barrier()  # sequential semantics restored here
    assert np.allclose(c, sequential_result)
    print("parallel run matches: True")

    # 3. Renaming in action: a reader is pending when we overwrite its
    # input.  Without renaming this WAR hazard would serialise; the
    # runtime gives the writer a fresh buffer instead and writes the
    # final value back at the barrier.
    src = np.zeros(8)
    outs = [np.zeros(8) for _ in range(4)]

    @css_task("input(a) output(b)")
    def snapshot(a, b):
        b[...] = a

    @css_task("inout(a)")
    def bump(a):
        a += 1

    with SmpssRuntime(num_workers=2, keep_graph=True) as rt:
        for out in outs:
            snapshot(src, out)  # reader of the current version
            bump(src)           # writer: renamed as needed
        rt.barrier()
        renames = rt.graph.stats.renames
    print("snapshots saw versions:", [int(o[0]) for o in outs], "(expect 0..3)")
    print("renamed buffers created:", renames)

    # 4. Inspect a task graph without executing anything.
    prog = record_program(_blocked_matmul_program, execute="skip")
    print(
        f"recorded graph: {prog.task_count} tasks, "
        f"{prog.graph.stats.total_edges} true-dependency edges, "
        f"critical path {prog.graph.critical_path_length()}"
    )
    print("GraphViz available via prog.graph.to_dot()")


def _blocked_matmul_program() -> None:
    n, m = 4, 8
    blocks = lambda: [[np.zeros((m, m)) for _ in range(n)] for _ in range(n)]  # noqa: E731
    a, b, c = blocks(), blocks(), blocks()
    for i in range(n):
        for j in range(n):
            for k in range(n):
                sgemm_t(a[i][k], b[k][j], c[i][j])


if __name__ == "__main__":
    main()
