#!/usr/bin/env python3
"""Quickstart: the SMPSs programming model in five minutes.

The paper's core idea (section II): write a *sequential* program, mark
functions as tasks with directionality clauses, and let the runtime
discover the parallelism by analysing data dependencies at run time.

This script shows:
 1. the dual-compilation property — the same code runs sequentially
    with no runtime, and in parallel inside one;
 2. automatic renaming removing WAR hazards (no hand copies);
 3. the task graph you can inspect (Figure 5 style);
 4. the observability stack: a traced run exporting a Perfetto-loadable
    Chrome trace, a GraphViz DOT with the critical path highlighted,
    and the runtime's own utilisation/critical-path report.

Run:  python examples/quickstart.py

Outputs (trace JSON, graph DOT) land in ``examples/out/`` — gitignored
build artifacts, safe to delete.
"""

import os

import numpy as np

from repro import SmpssRuntime, css_task, record_program
from repro.obs import graph_to_dot, write_chrome_trace


# --- declare tasks: the Python form of `#pragma css task` ----------------

@css_task("input(a, b) inout(c)")
def sgemm_t(a, b, c):
    """Figure 1's multiplication task: c += a @ b."""

    c += a @ b


@css_task("inout(a)")
def scale_t(a):
    a *= 0.5


def main() -> None:
    rng = np.random.default_rng(0)
    a = rng.standard_normal((64, 64))
    b = rng.standard_normal((64, 64))
    c = np.zeros((64, 64))

    # 1. Sequential execution: no runtime active, plain function calls.
    sgemm_t(a, b, c)
    scale_t(c)
    sequential_result = np.array(c)
    c[...] = 0.0
    print("sequential run done:", sequential_result.sum())

    # 2. Parallel execution: same call sites, now asynchronous tasks.
    with SmpssRuntime(num_workers=3) as rt:
        sgemm_t(a, b, c)
        scale_t(c)
        rt.barrier()  # sequential semantics restored here
    assert np.allclose(c, sequential_result)
    print("parallel run matches: True")

    # 3. Renaming in action: a reader is pending when we overwrite its
    # input.  Without renaming this WAR hazard would serialise; the
    # runtime gives the writer a fresh buffer instead and writes the
    # final value back at the barrier.
    src = np.zeros(8)
    outs = [np.zeros(8) for _ in range(4)]

    @css_task("input(a) output(b)")
    def snapshot(a, b):
        b[...] = a

    @css_task("inout(a)")
    def bump(a):
        a += 1

    with SmpssRuntime(num_workers=2, keep_graph=True) as rt:
        for out in outs:
            snapshot(src, out)  # reader of the current version
            bump(src)           # writer: renamed as needed
        rt.barrier()
        renames = rt.graph.stats.renames
    print("snapshots saw versions:", [int(o[0]) for o in outs], "(expect 0..3)")
    print("renamed buffers created:", renames)

    # 4. Inspect a task graph without executing anything.
    prog = record_program(_blocked_matmul_program, execute="skip")
    print(
        f"recorded graph: {prog.task_count} tasks, "
        f"{prog.graph.stats.total_edges} true-dependency edges, "
        f"critical path {prog.graph.critical_path_length()}"
    )

    # 5. Observability: trace a run, export it, and read the report.
    with SmpssRuntime(num_workers=3, trace=True, keep_graph=True) as rt:
        _blocked_matmul_program()
        rt.barrier()
    out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")
    os.makedirs(out_dir, exist_ok=True)
    trace_path = write_chrome_trace(
        rt.tracer, os.path.join(out_dir, "quickstart_trace.json")
    )
    print(f"\nPerfetto trace written: {trace_path} "
          "(open at https://ui.perfetto.dev)")
    dot_path = os.path.join(out_dir, "quickstart_graph.dot")
    with open(dot_path, "w") as fh:
        fh.write(graph_to_dot(rt.graph))
    print(f"task graph with critical path in red: {dot_path} "
          "(render with `dot -Tsvg`)")
    print()
    print(rt.report())
    # The analyzer agrees with the tracer's own accounting to <1%.
    from repro.obs import analyze_tracer

    report = analyze_tracer(rt.tracer, num_threads=rt.num_threads)
    for thread, busy in rt.tracer.busy_time_by_thread().items():
        assert abs(report.threads[thread].busy - busy) <= 0.01 * busy
    print("analyzer busy times agree with tracer.busy_time_by_thread(): True")


def _blocked_matmul_program() -> None:
    n, m = 4, 8
    blocks = lambda: [[np.zeros((m, m)) for _ in range(n)] for _ in range(n)]  # noqa: E731
    a, b, c = blocks(), blocks(), blocks()
    for i in range(n):
        for j in range(n):
            for k in range(n):
                sgemm_t(a[i][k], b[k][j], c[i][j])


if __name__ == "__main__":
    main()
