#!/usr/bin/env python3
"""N Queens: renaming replaces hand duplication (section VI.E).

"While the sequential version of the program can find all solutions
with just one solution array, the OpenMP 3.0 tasking version and the
Cilk version cannot. ... SMPSs does not require duplicating the partial
solution array by hand.  The runtime takes care of it by renaming the
array as needed."

This example runs the three versions, shows they agree, and counts how
many automatic renames the runtime performed — each one is an array
copy the OpenMP/Cilk programmer would have written by hand.

Run:  python examples/nqueens_renaming.py
"""

from repro import RecordingRuntime, SmpssRuntime
from repro.apps.nqueens import (
    KNOWN_SOLUTIONS,
    nqueens_duplicating_count,
    nqueens_sequential,
    nqueens_smpss_count,
)


def main(n: int = 9) -> None:
    solutions, nodes = nqueens_sequential(n)
    print(f"sequential n={n}: {solutions} solutions, {nodes} nodes explored")
    assert solutions == KNOWN_SOLUTIONS[n]

    with SmpssRuntime(num_workers=3, keep_graph=True) as rt:
        smpss = nqueens_smpss_count(n)
        graph_stats = rt.graph.stats
    print(f"SMPSs (threaded):   {smpss} solutions")
    print(f"   tasks: {dict(graph_stats.tasks_by_name)}")

    # Count renames under worst-case hazard pressure (recording mode
    # analyses every task before any has finished).
    recorder = RecordingRuntime(execute="eager")
    with recorder:
        nqueens_smpss_count(n)
    renames = recorder.graph.stats.renames
    print(f"   automatic renames of the solution array: {renames}")
    print("   (each one replaces a hand-written copy in OpenMP/Cilk)")

    duplicated = nqueens_duplicating_count(n)
    print(f"duplicating (OMP/Cilk-style) version: {duplicated} solutions")
    assert smpss == duplicated == solutions
    print("all three versions agree")


if __name__ == "__main__":
    main()
