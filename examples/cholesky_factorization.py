#!/usr/bin/env python3
"""Blocked Cholesky factorisation — the paper's flagship workload.

Reproduces the section IV/VI.A pipeline end to end:

 1. factorise a dense hyper-matrix with the Figure 4 left-looking code
    under the threaded runtime and validate against scipy;
 2. factorise a *flat* matrix with the Figure 9 on-demand block copies
    (the fair-comparison transformation against threaded BLAS);
 3. print the Figure 5 task graph facts and export it to GraphViz;
 4. simulate the same program on a virtual 32-core Altix and report
    Gflops, utilisation, and steal counts.

Run:  python examples/cholesky_factorization.py [--backend processes]

With ``--backend processes`` the flat-matrix demo runs on the repro.mp
process backend: the flat matrix is allocated in a shared-memory arena
(it is an *opaque* parameter, so workers must write through shared
memory — see docs/execution_backends.md), and the factor is asserted
bitwise identical to the threads-backend run and checked against the
``repro.blas.reference`` oracle.
"""

import argparse

import numpy as np
import scipy.linalg as sla

from repro import SmpssRuntime, arena_array, record_program
from repro.apps.cholesky import (
    cholesky_flat,
    cholesky_hyper,
    cholesky_sparse,
    flat_task_count,
    hyper_task_count,
)
from repro.blas.hypermatrix import HyperMatrix
from repro.sim import ALTIX_32, CostModel, simulate_program


def threaded_hyper_demo(size: int = 256, block: int = 64) -> None:
    print(f"== threaded hyper-matrix Cholesky ({size}x{size}, blocks {block}) ==")
    hm = HyperMatrix.random_spd(size // block, block, seed=1)
    reference = sla.cholesky(hm.to_dense(), lower=True)

    with SmpssRuntime(num_workers=3, trace=True) as rt:
        cholesky_hyper(hm)
        rt.barrier()
        tracer = rt.tracer

    error = abs(hm.lower_to_dense() - reference).max()
    print(f"   max |L - scipy| = {error:.2e}")
    print(f"   tasks by thread: {tracer.tasks_by_thread()}")
    print(tracer.ascii_timeline(width=64))


def _flat_factorise(spd: np.ndarray, block: int, backend: str) -> np.ndarray:
    """Run the Figure 9 flat-matrix Cholesky under *backend*.

    The flat matrix is opaque to the runtime (the paper's ``void *``
    idiom), so under the process backend it must live in shared-arena
    memory for worker writes to land in the master's copy.
    """

    work = arena_array(spd) if backend == "processes" else np.array(spd)
    with SmpssRuntime(num_workers=3, backend=backend) as rt:
        cholesky_flat(work, block)
        rt.barrier()
    return np.array(work)


def threaded_flat_demo(size: int = 192, block: int = 48,
                       backend: str = "threads") -> None:
    print(f"\n== flat-matrix Cholesky (Figure 9 transformation, "
          f"backend={backend}) ==")
    rng = np.random.default_rng(2)
    x = rng.standard_normal((size, size))
    spd = x @ x.T + size * np.eye(size)
    work = _flat_factorise(spd, block, backend)
    error = abs(np.tril(work) - sla.cholesky(spd, lower=True)).max()
    n_blocks = size // block
    print(f"   max error = {error:.2e}")
    print(f"   tasks incl. get/put copies: {flat_task_count(n_blocks)['total']}")

    if backend == "processes":
        from repro.blas.reference import ref_cholesky

        twin = _flat_factorise(spd, block, "threads")
        assert np.array_equal(np.tril(work), np.tril(twin)), (
            "threads and processes backends disagree bitwise"
        )
        oracle_n = 48  # the pure-Python oracle is O(n^3); keep it small
        small = spd[:oracle_n, :oracle_n]
        factor = _flat_factorise(small, oracle_n // 2, "processes")
        oracle_error = abs(np.tril(factor) - ref_cholesky(small)).max()
        print(f"   backends agree bitwise; max error vs "
              f"repro.blas.reference oracle = {oracle_error:.2e}")
        assert oracle_error < 1e-8


def figure5_demo() -> None:
    print("\n== Figure 5: the 6x6-block task graph ==")
    hm = HyperMatrix(6, 1, np.float32)
    for i in range(6):
        for j in range(6):
            hm[i, j] = np.zeros((1, 1), np.float32)
    prog = record_program(cholesky_hyper, hm, execute="skip")
    print(f"   {prog.task_count} tasks (formula: {hyper_task_count(6)['total']})")
    t51 = prog.graph.get(51)
    print(
        f"   task 51 ({t51.name}) direct predecessors: "
        f"{sorted(p.task_id for p in t51.predecessors)} — runnable after "
        "tasks 1 and 6, exactly as the paper notes"
    )
    dot = prog.graph.to_dot()
    print(f"   GraphViz export: {len(dot.splitlines())} lines (prog.graph.to_dot())")
    print("   dependency levels (width = available parallelism):")
    for line in prog.graph.to_ascii_levels(width=60).splitlines():
        print("     " + line)


def sparse_demo(n_blocks: int = 8, block: int = 16, bandwidth: int = 2) -> None:
    print("\n== sparse blocked Cholesky with on-demand fill-in ==")
    rng = np.random.default_rng(9)
    size = n_blocks * block
    l0 = np.zeros((size, size))
    for i in range(n_blocks):
        for j in range(max(0, i - bandwidth), i + 1):
            l0[i * block:(i + 1) * block, j * block:(j + 1) * block] = (
                rng.standard_normal((block, block)) * 0.3
            )
        ii = slice(i * block, (i + 1) * block)
        l0[ii, ii] = np.tril(l0[ii, ii]) + block * np.eye(block)
    spd = l0 @ l0.T
    hm = HyperMatrix(n_blocks, block, np.float64)
    for i in range(n_blocks):
        for j in range(i + 1):
            piece = spd[i * block:(i + 1) * block, j * block:(j + 1) * block]
            if np.any(piece != 0.0):
                hm[i, j] = np.array(piece)
    present_before = hm.block_count()
    with SmpssRuntime(num_workers=3) as rt:
        cholesky_sparse(hm)
        rt.barrier()
    error = abs(hm.lower_to_dense() - sla.cholesky(spd, lower=True)).max()
    dense_blocks = n_blocks * (n_blocks + 1) // 2  # lower triangle
    print(f"   band matrix: {present_before} blocks present "
          f"(a dense lower triangle has {dense_blocks})")
    print(f"   after factorisation: {hm.block_count()} blocks (fill-in on demand)")
    print(f"   max error vs scipy: {error:.2e}")


def simulation_demo(n: int = 4096, block: int = 128) -> None:
    print(f"\n== simulated 32-core Altix run ({n}x{n}, blocks {block}) ==")
    n_blocks = n // block
    hm = HyperMatrix(n_blocks, 1, np.float32)
    for i in range(n_blocks):
        for j in range(n_blocks):
            hm[i, j] = np.zeros((1, 1), np.float32)
    cost = CostModel(ALTIX_32, library="goto", block_size=block)
    res = simulate_program(cholesky_hyper, hm, cost_model=cost)
    print(f"   simulated makespan: {res.makespan*1e3:.1f} ms")
    print(f"   Gflops: {res.gflops(n**3/3):.1f} (peak {ALTIX_32.peak_gflops:.1f})")
    print(f"   utilisation: {res.utilisation:.2f}, steals: {res.steals}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend", choices=("threads", "processes"), default="threads",
        help="execution backend for the flat-matrix demo "
             "(processes = repro.mp worker processes over a shared arena)",
    )
    cli = parser.parse_args()
    threaded_hyper_demo()
    threaded_flat_demo(backend=cli.backend)
    figure5_demo()
    sparse_demo()
    simulation_demo()
