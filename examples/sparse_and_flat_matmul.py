#!/usr/bin/env python3
"""Matrix multiplication three ways (Figures 1, 3 and section VI.B).

Shows how the same task (``sgemm_t``) powers:
 * the dense hyper-matrix code of Figure 1 — and that *any* loop order
   gives correct results, because ordering is the runtime's job;
 * the sparse code of Figure 3, which allocates output blocks and
   creates tasks purely on data demand;
 * the flat-matrix variant with opaque pointers and on-demand copy
   tasks used for the Figure 12 comparison.

Run:  python examples/sparse_and_flat_matmul.py
"""

import numpy as np

from repro import SmpssRuntime, record_program
from repro.apps.matmul import matmul_dense, matmul_flat, matmul_sparse
from repro.blas.hypermatrix import HyperMatrix


def dense_any_order() -> None:
    print("== dense hyper-matrix multiply, all six loop orders ==")
    n, m = 4, 16
    a = HyperMatrix.random(n, m, np.float64, seed=0)
    b = HyperMatrix.random(n, m, np.float64, seed=1)
    expected = a.to_dense() @ b.to_dense()
    for order in ("ijk", "ikj", "jik", "jki", "kij", "kji"):
        c = HyperMatrix.zeros(n, m, np.float64)
        with SmpssRuntime(num_workers=3) as rt:
            matmul_dense(a, b, c, loop_order=order)
            rt.barrier()
        err = abs(c.to_dense() - expected).max()
        print(f"   order {order}: max error {err:.2e}")


def sparse_demand_driven() -> None:
    print("\n== sparse hyper-matrix multiply (Figure 3) ==")
    n, m = 6, 8
    a = HyperMatrix.random_sparse(n, m, density=0.3, dtype=np.float64, seed=2)
    b = HyperMatrix.random_sparse(n, m, density=0.3, dtype=np.float64, seed=3)
    c = HyperMatrix(n, m, np.float64)

    prog = record_program(matmul_sparse, a, b, c, execute="eager")
    dense_error = abs(c.to_dense() - a.to_dense() @ b.to_dense()).max()
    print(f"   A has {a.block_count()}/{n*n} blocks, B has {b.block_count()}")
    print(f"   C allocated {c.block_count()} blocks on demand")
    print(f"   {prog.task_count} gemm tasks (dense would need {n**3})")
    print(f"   max error {dense_error:.2e}")


def flat_with_opaque_pointers() -> None:
    print("\n== flat matmul with on-demand block copies (section VI.B) ==")
    size, block = 128, 32
    rng = np.random.default_rng(4)
    a = rng.standard_normal((size, size)).astype(np.float64)
    b = rng.standard_normal((size, size)).astype(np.float64)
    c = np.zeros((size, size))
    with SmpssRuntime(num_workers=3, keep_graph=True) as rt:
        matmul_flat(a, b, c, block)
        rt.barrier()
        counts = dict(rt.graph.stats.tasks_by_name)
    print(f"   max error {abs(c - a @ b).max():.2e}")
    print(f"   task mix: {counts}")
    print("   the flat arrays were opaque: only the tiles carried deps")


if __name__ == "__main__":
    dense_any_order()
    sparse_demand_driven()
    flat_with_opaque_pointers()
