#!/usr/bin/env python3
"""Blocked LU with partial pivoting via array regions (section V).

The paper motivates the region extension with exactly this algorithm:
"the algorithm includes pivoting operations that consist in swapping
columns and swapping rows.  Those two operations make it hard to
block."  The paper proposed the syntax; this library implements it, so
here is the worked LU the paper never showed: every task operates on a
declared region of ONE flat matrix, and the dependency engine orders
overlapping regions (row swaps vs trailing tiles) while running
disjoint tiles in parallel.

Run:  python examples/lu_with_regions.py
"""

import numpy as np

from repro import SmpssRuntime, record_program
from repro.apps.lu import lu_blocked, lu_reconstruct, lu_task_count


def main(size: int = 96, block: int = 24) -> None:
    rng = np.random.default_rng(0)
    original = rng.standard_normal((size, size))

    print(f"== threaded blocked LU ({size}x{size}, blocks of {block}) ==")
    work = np.array(original)
    with SmpssRuntime(num_workers=3, keep_graph=True) as rt:
        ipiv = lu_blocked(work, block)
        stats = rt.graph.stats

    error = abs(lu_reconstruct(work, ipiv) - original).max()
    print(f"   reconstruction |P^T L U - A|_max = {error:.2e}")
    print(f"   tasks: {dict(stats.tasks_by_name)}")
    print(f"   formula: {lu_task_count(size // block)}")
    print(f"   edge kinds: {dict(stats.edges_by_kind)} "
          "(regions use explicit anti/output edges — no renaming)")

    print("\n== region-level parallelism ==")
    work2 = np.array(original)
    prog = record_program(lu_blocked, work2, block, execute="eager")
    graph = prog.graph
    print(f"   {prog.task_count} tasks, critical path "
          f"{graph.critical_path_length()} — trailing tiles of one step "
          "run in parallel, row swaps serialise per block column")

    print("\n== solving a system with the factors ==")
    import scipy.linalg as sla

    b = rng.standard_normal(size)
    x = np.array(b)
    for row in range(size):
        p = int(ipiv[row])
        if p != row:
            x[[row, p]] = x[[p, row]]
    lower = np.tril(work, -1) + np.eye(size)
    upper = np.triu(work)
    y = sla.solve_triangular(lower, x, lower=True, unit_diagonal=True)
    solution = sla.solve_triangular(upper, y)
    print(f"   |A x - b|_max = {abs(original @ solution - b).max():.2e}")


if __name__ == "__main__":
    main()
