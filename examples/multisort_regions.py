#!/usr/bin/env python3
"""Multisort with array regions (Figure 7, section V).

The section V.A language extension lets tasks declare *which part* of
an array they touch: ``seqquick_t`` is ``inout(data{i..j})`` and
``seqmerge_t`` reads two regions of the same parameter and writes a
region of another.  The dependency engine orders overlapping regions
and runs disjoint ones in parallel — no barriers anywhere in the code.

Also demonstrates the section V.B *representants* workaround the paper
used while its runtime lacked region support.

Run:  python examples/multisort_regions.py
"""

import numpy as np

from repro import Representant, RepresentantTable, SmpssRuntime, css_task, record_program
from repro.apps.multisort import multisort


def region_multisort_demo() -> None:
    print("== Figure 7 multisort under the threaded runtime ==")
    rng = np.random.default_rng(0)
    data = rng.standard_normal(1 << 15).astype(np.float32)
    expected = np.sort(data)

    with SmpssRuntime(num_workers=3, keep_graph=True) as rt:
        # multisort() ends with its own barrier, so the data and the
        # graph stats are final here (repro.check.flow flags an extra
        # rt.barrier() at this point as flow-dead-barrier).
        multisort(data, quicksize=1 << 11)
        stats = rt.graph.stats
    print(f"   sorted correctly: {bool((data == expected).all())}")
    print(f"   tasks: {dict(stats.tasks_by_name)}")
    print(f"   dependency edges: {stats.total_edges} "
          f"({dict(stats.edges_by_kind)})")


def region_parallelism_demo() -> None:
    print("\n== regions: disjoint writes run in parallel ==")

    @css_task("inout(data{i..j}) input(i, j)")
    def fill(data, i, j):
        data[i : j + 1] = i

    data = np.zeros(100, np.float32)

    prog = record_program(
        lambda: [fill(data, i, i + 9) for i in range(0, 100, 10)],
        execute="skip",
    )
    print(f"   10 disjoint region writes -> {prog.graph.stats.total_edges} edges "
          "(zero: fully parallel)")

    prog = record_program(
        lambda: [fill(data, i, i + 19) for i in range(0, 80, 10)],
        execute="skip",
    )
    print(f"   8 overlapping region writes -> {prog.graph.stats.total_edges} edges "
          "(chained by overlap)")


def representants_demo() -> None:
    print("\n== section V.B: representants for a region-less runtime ==")
    # One representant per matrix row; the matrix itself is opaque.
    matrix = np.zeros((4, 100), np.float64)
    rows = RepresentantTable("row")

    # The representant is a pure dependency token, never touched by the
    # body — exactly the pattern the linter's unwritten-output rule is
    # meant to question, so the suppression is the documentation here.
    @css_task("inout(rep) opaque(m) input(r)")  # css: ignore[unwritten-output]
    def scale_row(rep, m, r):  # noqa: ARG001 - rep carries the dependency
        m[r] = m[r] * 2.0 + 1.0

    @css_task("input(rep) opaque(m) input(r) inout(acc)")
    def sum_row(rep, m, r, acc):  # noqa: ARG001
        acc += m[r].sum()

    acc = np.zeros(1)
    with SmpssRuntime(num_workers=3) as rt:
        for r in range(4):
            scale_row(rows.for_key(r), matrix, r)
            sum_row(rows.for_key(r), matrix, r, acc)
            scale_row(rows.for_key(r), matrix, r)
        rt.barrier()
    # Each row: scaled (0*2+1=1), summed (100), scaled again (3).
    print(f"   accumulated row sums: {acc[0]:.0f} (expected 400)")
    print(f"   final matrix value: {matrix[0,0]:.0f} (expected 3)")
    print("   rows were independent; per-row chains were ordered")


if __name__ == "__main__":
    region_multisort_demo()
    region_parallelism_demo()
    representants_demo()
