#!/usr/bin/env python3
"""Run an annotated sequential program through the compiler, in parallel.

``examples/annotated/blocked_matmul.py`` is ordinary Python with
``#pragma css`` comments — it imports nothing from this library.  Here
we load it through the source-to-source translator (the paper's
compiler path) and execute it under the threaded runtime and, for
comparison, sequentially.

Run:  python examples/compiled_program.py
"""

import os
import time

from repro import SmpssRuntime
from repro.compiler import load_annotated_module

HERE = os.path.dirname(os.path.abspath(__file__))
ANNOTATED = os.path.join(HERE, "annotated", "blocked_matmul.py")


def main() -> None:
    module = load_annotated_module(ANNOTATED, "blocked_matmul_css")

    print("== translated program, sequential execution ==")
    start = time.perf_counter()
    module.main(n=4, m=32)
    print(f"   {time.perf_counter() - start:.3f}s")

    print("== translated program, threaded SMPSs execution ==")
    start = time.perf_counter()
    with SmpssRuntime(num_workers=3):
        module.main(n=4, m=32)
    print(f"   {time.perf_counter() - start:.3f}s")
    print("(identical checksums: the pragmas added parallelism, not semantics)")


if __name__ == "__main__":
    main()
