#!/usr/bin/env python3
"""Live debugging of a running task graph with ``repro.live``.

``SmpssRuntime(live=True)`` gives every run a debugger: the scheduler
can be paused, stepped one dispatch at a time, and told to hold tasks
of a given type at a breakpoint — while the dependency graph is still
growing.  This example drives it all in-process through the ``rt.live``
handle (the ``python -m repro.live attach`` CLI speaks to the same
session over a socket; ``python -m repro.live replay`` walks a
recording through the same dashboard offline).

The script:

* starts a Cholesky factorisation **paused**, so the full worst-case
  hazard graph is visible before a single task has run;
* inspects the in-flight graph (task mix, edges, critical path);
* sets a breakpoint on ``spotrf_t`` — the panel factorisation that
  anchors every elimination step — and grants five dispatch tickets;
* shows the held task and the control-plane state while stopped;
* clears the breakpoint, resumes, and verifies the numbers are exactly
  the ones an undebugged run produces.

Run:  python examples/live_debug.py
"""

import time
from collections import Counter

import numpy as np

from repro import SmpssRuntime
from repro.apps.cholesky import cholesky_hyper
from repro.blas.hypermatrix import HyperMatrix


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError("runtime did not reach the expected state")
        time.sleep(0.01)


def main() -> None:
    hm = HyperMatrix.random_spd(6, 16, seed=7)
    reference = np.linalg.cholesky(hm.to_dense())

    rt = SmpssRuntime(
        num_workers=3,
        live=True,
        live_start_paused=True,  # workers park before the first dispatch
        keep_graph=True,
    )
    with rt:
        live = rt.live
        print(f"live session listening at {live.address}")
        print("  (another terminal could: python -m repro.live attach "
              f"{live.address})\n")

        # Submission is synchronous, so with the scheduler paused the
        # whole program lands in the graph before anything executes —
        # the worst-case hazard graph of the paper's section IV.
        cholesky_hyper(hm)

        graph = rt.graph
        mix = Counter(task.name for task in graph)
        edges = sum(1 for _ in graph.edges())
        print(f"paused with {len(graph)} tasks submitted, 0 executed")
        print(f"  task mix: {dict(sorted(mix.items()))}")
        print(f"  edges: {edges}, critical path: "
              f"{graph.critical_path_length()} tasks\n")

        # Hold the *next* spotrf_t at the dispatch point, then grant
        # five dispatch tickets.  The very first ready task is the
        # first panel factorisation, so the breakpoint trips on ticket
        # one (the hold consumes it) and up to four other tasks run.
        live.add_break(name="spotrf_t")
        live.step(5)
        wait_until(lambda: live.state()["holds"] > 0)

        state = live.state()
        print(f"breakpoint hit ({state['holds']} hold): the spotrf_t was "
              "put back at the head of the ready list")
        print(f"  paused={state['paused']}  executed={state['executed']}  "
              f"ready={state['ready']}  step budget left="
              f"{state['step_budget']}\n")

        # Release: drop the breakpoint and let the run finish normally.
        live.clear_breaks()
        live.resume()
        rt.barrier()
        print(f"resumed to completion: {rt.tasks_executed}/{len(graph)} "
              "tasks executed")

    assert np.allclose(np.tril(hm.to_dense()), reference, atol=1e-8)
    print("factor matches numpy.linalg.cholesky — debugging changed "
          "nothing but the schedule")


if __name__ == "__main__":
    main()
