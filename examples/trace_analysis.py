#!/usr/bin/env python3
"""Post-mortem trace analysis with the ``repro.obs`` stack.

The tracing-enabled runtime records task events into per-thread ring
buffers; this example runs a traced Cholesky on both backends (threads
and the virtual Altix), then walks the observability workflow:

* ``runtime.report()`` — makespan breakdown, per-thread busy/idle,
  work/span bounds, locality hit-rate, and the metrics registry;
* ``write_chrome_trace`` — a Perfetto-loadable JSON timeline;
* ``analyze_events(load_chrome_trace(...))`` — the same report
  recomputed offline from the exported file (what the
  ``python -m repro.obs report trace.json`` CLI does);
* ``tracer.to_paraver()`` — the paper's own Paraver ``.prv`` format
  (section VII.A);
* the classic section VII analyses (parallelism profile, load
  balance) which still operate on any tracer.

Run:  python examples/trace_analysis.py
"""

import os
import tempfile

import numpy as np

from repro import SmpssRuntime
from repro.apps.cholesky import cholesky_hyper
from repro.blas.hypermatrix import HyperMatrix
from repro.core.analysis import (
    average_parallelism,
    load_balance,
    parallelism_profile,
)
from repro.obs import (
    analyze_events,
    load_chrome_trace,
    render_report,
    write_chrome_trace,
)
from repro.sim import ALTIX_32, CostModel, SimulatedRuntime


def threaded_trace() -> None:
    hm = HyperMatrix.random_spd(6, 32, seed=1)
    rt = SmpssRuntime(num_workers=3, trace=True, keep_graph=True)
    with rt:
        cholesky_hyper(hm)
        rt.barrier()
    print(rt.report("traced threaded run (wall-clock time)"))
    _classic_profile(rt.tracer)

    # Export to Chrome trace format and analyse the file offline — the
    # loaded report matches the live one (same makespan, same counts).
    with tempfile.TemporaryDirectory() as tmp:
        path = write_chrome_trace(rt.tracer, os.path.join(tmp, "trace.json"))
        offline = analyze_events(
            load_chrome_trace(path), num_threads=rt.num_threads
        )
        print(f"\n   offline re-analysis of {os.path.basename(path)}: "
              f"{offline.total_tasks} tasks, "
              f"makespan {offline.makespan * 1e3:.2f}ms "
              "(also: python -m repro.obs report trace.json)")


def simulated_trace() -> None:
    n_blocks = 12
    hm = HyperMatrix(n_blocks, 1, np.float32)
    for i in range(n_blocks):
        for j in range(n_blocks):
            hm[i, j] = np.zeros((1, 1), np.float32)
    machine = ALTIX_32.with_cores(16)
    runtime = SimulatedRuntime(
        machine=machine,
        cost_model=CostModel(machine, library="goto", block_size=256),
        trace=True,
    )
    with runtime:
        cholesky_hyper(hm)
        runtime.barrier()
    print()
    print(render_report(
        analyze_events(runtime.tracer.events, num_threads=machine.cores),
        title="traced simulated run (virtual Altix time, 16 cores)",
    ))
    _classic_profile(runtime.tracer)
    prv = runtime.tracer.to_paraver()
    print(f"   .prv export: {len(prv.splitlines())} records "
          "(tracer.to_paraver())")


def _classic_profile(tracer) -> None:
    print(f"   average parallelism: {average_parallelism(tracer):.2f}")
    print(f"   load balance: {load_balance(tracer):.2f}")
    profile = parallelism_profile(tracer, samples=24)
    peak = max((c for _t, c in profile), default=0)
    bars = "".join("#" if c >= peak * 0.75 else
                   "+" if c >= peak * 0.5 else
                   "." if c > 0 else " "
                   for _t, c in profile)
    print(f"   parallelism profile (peak {peak}): |{bars}|")
    print(tracer.ascii_timeline(width=60))


if __name__ == "__main__":
    threaded_trace()
    simulated_trace()
