#!/usr/bin/env python3
"""Post-mortem trace analysis — the Paraver workflow (section VII.A).

The tracing-enabled runtime records task events; this example runs a
traced Cholesky on both backends (threads and the virtual Altix),
then performs the classic Paraver analyses: parallelism profile,
per-task-type summaries, load balance, and a ``.prv`` export.

Run:  python examples/trace_analysis.py
"""

import numpy as np

from repro import SmpssRuntime
from repro.apps.cholesky import cholesky_hyper
from repro.blas.hypermatrix import HyperMatrix
from repro.core.analysis import (
    average_parallelism,
    load_balance,
    parallelism_profile,
    task_type_summary,
)
from repro.sim import ALTIX_32, CostModel, SimulatedRuntime


def threaded_trace() -> None:
    print("== traced threaded run (wall-clock time) ==")
    hm = HyperMatrix.random_spd(6, 32, seed=1)
    rt = SmpssRuntime(num_workers=3, trace=True)
    with rt:
        cholesky_hyper(hm)
        rt.barrier()
    _report(rt.tracer)


def simulated_trace() -> None:
    print("\n== traced simulated run (virtual Altix time, 16 cores) ==")
    n_blocks = 12
    hm = HyperMatrix(n_blocks, 1, np.float32)
    for i in range(n_blocks):
        for j in range(n_blocks):
            hm[i, j] = np.zeros((1, 1), np.float32)
    machine = ALTIX_32.with_cores(16)
    runtime = SimulatedRuntime(
        machine=machine,
        cost_model=CostModel(machine, library="goto", block_size=256),
        trace=True,
    )
    with runtime:
        cholesky_hyper(hm)
        runtime.barrier()
    _report(runtime.tracer)
    prv = runtime.tracer.to_paraver()
    print(f"   .prv export: {len(prv.splitlines())} records "
          "(tracer.to_paraver())")


def _report(tracer) -> None:
    print(f"   average parallelism: {average_parallelism(tracer):.2f}")
    print(f"   load balance: {load_balance(tracer):.2f}")
    print("   per task type:")
    for name, summary in sorted(task_type_summary(tracer).items()):
        print(
            f"     {name:12s} count={summary.count:4d} "
            f"total={summary.total_time*1e3:8.2f}ms "
            f"mean={summary.mean_time*1e6:8.1f}us"
        )
    profile = parallelism_profile(tracer, samples=24)
    peak = max((c for _t, c in profile), default=0)
    bars = "".join("#" if c >= peak * 0.75 else
                   "+" if c >= peak * 0.5 else
                   "." if c > 0 else " "
                   for _t, c in profile)
    print(f"   parallelism profile (peak {peak}): |{bars}|")
    print(tracer.ascii_timeline(width=60))


if __name__ == "__main__":
    threaded_trace()
    simulated_trace()
