"""A plain sequential program annotated only with #pragma css comments.

This file contains NO imports from repro and runs unmodified as
ordinary Python (the pragmas are comments).  Passed through the
source-to-source translator it becomes a parallel SMPSs program —
the paper's dual-compilation property, at the source level.

    python examples/annotated/blocked_matmul.py          # sequential
    python examples/compiled_program.py                  # translated + parallel
    python -m repro.compiler examples/annotated/blocked_matmul.py  # view output
"""

import numpy as np


#pragma css task input(a, b) inout(c)
def sgemm_t(a, b, c):
    c += a @ b


#pragma css task output(block) input(value)
def fill_t(block, value):
    block[...] = value


def build(n, m, value):
    grid = [[np.empty((m, m)) for _ in range(n)] for _ in range(n)]
    for row in grid:
        for block in row:
            fill_t(block, value)
    return grid


def multiply(a, b, c, n):
    for i in range(n):
        for j in range(n):
            for k in range(n):
                sgemm_t(a[i][k], b[k][j], c[i][j])
    #pragma css barrier


def main(n=4, m=16):
    a = build(n, m, 1.0)
    b = build(n, m, 2.0)
    c = build(n, m, 0.0)
    multiply(a, b, c, n)
    total = sum(block.sum() for row in c for block in row)
    expected = n * m * 2.0 * (n * m) * (n * m)
    print(f"checksum {total:.0f} (expected {expected:.0f})")
    assert total == expected


if __name__ == "__main__":
    main()
