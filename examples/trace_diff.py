#!/usr/bin/env python3
"""Differential trace analysis: find out *why* a run got slower.

Two traced Cholesky runs on the threaded runtime — the second with the
``gemm_nt`` tile kernel artificially slowed down (a stand-in for a
BLAS misconfiguration, a cache-hostile block size, or a scheduler
change).  ``repro.obs.diff`` attributes the makespan delta:

* per-task-type duration shifts, with bootstrap 95% CIs so genuine
  shifts stand out from thread-scheduling noise;
* the critical-path composition change (which task types entered or
  left the chain that ends at the makespan);
* scheduler-behaviour deltas (utilisation, locality, steals, barrier);
* side-by-side exports: one Chrome trace with both runs as aligned
  processes (ui.perfetto.dev) and a DOT picture of both chains.

The same reports come from the CLI on exported traces::

    python -m repro.obs diff before.trace.json after.trace.json

Run:  python examples/trace_diff.py
"""

import os
import tempfile
import time

from repro import SmpssRuntime
from repro.apps.cholesky import cholesky_hyper
from repro.blas import kernels
from repro.blas.hypermatrix import HyperMatrix
from repro.obs import write_chrome_trace
from repro.obs.diff import (
    diff_traces,
    render_trace_diff,
    write_diff_chrome_trace,
    write_diff_dot,
)


def traced_run() -> list:
    hm = HyperMatrix.random_spd(8, 24, seed=3)
    rt = SmpssRuntime(num_workers=4, trace=True)
    with rt:
        cholesky_hyper(hm)
        rt.barrier()
    return rt.tracer.events


def main() -> None:
    print("run A: baseline traced Cholesky (8x8 blocks of 24)")
    events_a = traced_run()

    print("run B: same program, gemm_nt slowed ~2x")
    real_gemm_nt = kernels.gemm_nt

    def slow_gemm_nt(a, b, c):
        start = time.perf_counter()
        real_gemm_nt(a, b, c)
        elapsed = time.perf_counter() - start
        time.sleep(elapsed)  # double the apparent kernel cost

    kernels.gemm_nt = slow_gemm_nt
    try:
        events_b = traced_run()
    finally:
        kernels.gemm_nt = real_gemm_nt

    diff = diff_traces(events_a, events_b, n_boot=500)
    print()
    print(render_trace_diff(diff, "baseline", "slow gemm"))

    culprit = diff.top_regressors(1)[0]
    print(f"\n=> biggest regressor: {culprit.name} "
          f"(+{culprit.delta_total * 1e3:.1f}ms total busy time)")

    with tempfile.TemporaryDirectory() as tmp:
        class Holder:
            def __init__(self, events):
                self.events = events

        a_path = write_chrome_trace(Holder(events_a),
                                    os.path.join(tmp, "a.trace.json"))
        b_path = write_chrome_trace(Holder(events_b),
                                    os.path.join(tmp, "b.trace.json"))
        sbs = write_diff_chrome_trace(
            events_a, events_b, os.path.join(tmp, "side_by_side.json"),
            label_a="baseline", label_b="slow gemm",
        )
        dot = write_diff_dot(diff, os.path.join(tmp, "path_diff.dot"))
        print(f"\nexports (in a temp dir, deleted on exit):")
        for path in (a_path, b_path, sbs, dot):
            print(f"  {os.path.basename(path):22s} {os.path.getsize(path)} bytes")
        print("the CLI equivalent:  python -m repro.obs diff "
              "a.trace.json b.trace.json --dot path_diff.dot")


if __name__ == "__main__":
    main()
