#!/usr/bin/env python3
"""Drive the virtual 32-core Altix: regenerate a figure interactively.

Every performance figure of the paper comes from the discrete-event
simulator in ``repro.sim`` — the same dependency engine and scheduler
as the threaded runtime, over virtual time with a calibrated cost
model.  This example regenerates small versions of Figures 11 and 14
and prints ASCII charts.

Run:  python examples/simulated_altix.py
"""

from repro.bench import experiments as E


def main() -> None:
    print("regenerating a reduced Figure 11 (Cholesky scaling)...")
    fig11 = E.fig11_cholesky_scaling(n=4096, m=256, threads=(1, 2, 4, 8, 16, 32))
    print(fig11.table())
    print()
    print(fig11.ascii_chart(height=12, width=48))

    print("\nregenerating a reduced Figure 14 (multisort speedup)...")
    fig14 = E.fig14_multisort(n=1 << 20, quicksize=1 << 14,
                              threads=(1, 2, 4, 8, 16, 32))
    print(fig14.table())
    print()
    print(fig14.ascii_chart(height=12, width=48))

    print("\nFigure 5 facts:")
    facts = E.fig05_cholesky_graph()
    print(f"  tasks: {facts['total_tasks']}, edges: {facts['edges']}, "
          f"critical path: {facts['critical_path']}")
    print(f"  task 51 unlocked by tasks {facts['witness']['task_51_unlocked_by']}")


if __name__ == "__main__":
    main()
